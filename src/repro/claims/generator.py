"""TabFact-style claim generation from lake tables.

For each table, the generator renders natural-language claims in the
five operation classes, half true (entailed by the table) and half false
(corrupted: swapped values, flipped comparisons, perturbed aggregates,
off-by-k counts).  Each generated claim records its gold label and source
table, which is how the paper defines retrieval relevance ("each textual
claim is associated with a corresponding table").
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.claims.engine import TableQueryEngine
from repro.claims.model import Aggregate, Claim, ClaimOp, ClaimSpec, Comparison
from repro.datalake.types import Table
from repro.text.numbers import format_number, parse_number


@dataclass(frozen=True)
class GeneratedClaim:
    """A claim with its gold label and provenance."""

    claim: Claim
    label: bool
    table_id: str


def _render(spec: ClaimSpec, scope: str, variant: bool = False) -> str:
    """Render a spec as a surface sentence.

    ``variant=False`` produces the canonical template (parsed by both the
    strict and the broad grammar); ``variant=True`` produces a paraphrase
    only the broad grammar handles — modelling claims phrased outside a
    template-pre-trained verifier's training distribution.
    """
    if spec.op is ClaimOp.LOOKUP:
        if variant:
            return f"{spec.value} is the {spec.column} of {spec.subject}"
        return f"the {spec.column} of {spec.subject} is {spec.value}"
    if spec.op is ClaimOp.COMPARE:
        if variant:
            word = (
                "greater" if spec.comparison is Comparison.HIGHER else "smaller"
            )
            return f"{spec.subject} recorded a {word} {spec.column} than {spec.subject_b}"
        return (
            f"{spec.subject} has a {spec.comparison.value} "
            f"{spec.column} than {spec.subject_b}"
        )
    if spec.op is ClaimOp.AGGREGATE:
        if variant:
            word = {"total": "combined", "average": "mean"}.get(
                spec.aggregate.value, spec.aggregate.value
            )
            return f"the {word} {spec.column} in {scope} is {spec.value}"
        return f"the {spec.aggregate.value} {spec.column} in {scope} is {spec.value}"
    if spec.op is ClaimOp.SUPERLATIVE:
        if variant:
            word = "most" if spec.comparison is Comparison.HIGHER else "fewest"
            return f"{spec.subject} recorded the {word} {spec.column} in {scope}"
        direction = "highest" if spec.comparison is Comparison.HIGHER else "lowest"
        return f"{spec.subject} has the {direction} {spec.column} in {scope}"
    if spec.op is ClaimOp.COUNT:
        if variant:
            return (
                f"exactly {spec.count} entries have a {spec.column} "
                f"of {spec.value} in {scope}"
            )
        return (
            f"there are {spec.count} rows with a {spec.column} of "
            f"{spec.value} in {scope}"
        )
    raise ValueError(f"unknown op: {spec.op}")  # pragma: no cover


class ClaimGenerator:
    """Seeded claim generator over one or more tables.

    ``variation_rate`` is the fraction of claims rendered as paraphrases
    outside the canonical template grammar (see :func:`_render`).
    """

    def __init__(self, seed: int = 0, variation_rate: float = 0.0) -> None:
        if not 0.0 <= variation_rate <= 1.0:
            raise ValueError(f"variation_rate must be in [0, 1], got {variation_rate}")
        self._rng = random.Random(seed)
        self._engine = TableQueryEngine()
        self.variation_rate = variation_rate

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    def _numeric_columns(self, table: Table) -> List[str]:
        out = []
        for column in table.columns:
            numbers = [n for n in table.column_numbers(column) if n is not None]
            if len(numbers) >= max(2, table.num_rows // 2):
                out.append(column)
        return out

    def _categorical_columns(self, table: Table) -> List[str]:
        numeric = set(self._numeric_columns(table))
        return [
            column
            for column in table.columns
            if column not in numeric and column != table.key_column
        ]

    def _subject_of(self, table: Table, row_index: int) -> Optional[str]:
        if table.key_column is None:
            return None
        return table.rows[row_index][table.columns.index(table.key_column)]

    def _perturb_number(self, value: float) -> float:
        """A clearly-different number of the same magnitude."""
        factor = self._rng.uniform(1.1, 1.5)
        if self._rng.random() < 0.5:
            factor = 1.0 / factor
        perturbed = value * factor
        if float(value).is_integer():
            perturbed = float(int(round(perturbed)))
            if int(perturbed) == int(value):
                perturbed = value + self._rng.choice([-2.0, -1.0, 1.0, 2.0])
        return perturbed

    # ------------------------------------------------------------------
    # per-op generation; each returns (spec, label) or None
    # ------------------------------------------------------------------
    def _make_lookup(self, table: Table, positive: bool) -> Optional[Tuple[ClaimSpec, bool]]:
        if table.num_rows == 0 or table.num_columns < 2 or table.key_column is None:
            return None
        row_index = self._rng.randrange(table.num_rows)
        subject = self._subject_of(table, row_index)
        candidates = [c for c in table.columns if c != table.key_column]
        column = self._rng.choice(candidates)
        actual = table.rows[row_index][table.columns.index(column)]
        if not subject or not actual:
            return None
        if positive:
            return ClaimSpec(
                op=ClaimOp.LOOKUP, column=column, subject=subject, value=actual
            ), True
        # corrupt: a different value from the same column, or perturbed number
        others = [
            value
            for value in table.column_values(column)
            if not self._engine.values_match(value, actual)
        ]
        number = parse_number(actual)
        if number is not None:
            wrong = format_number(round(self._perturb_number(number), 2))
        elif others:
            wrong = self._rng.choice(sorted(set(others)))
        else:
            return None
        return ClaimSpec(
            op=ClaimOp.LOOKUP, column=column, subject=subject, value=wrong
        ), False

    def _make_compare(self, table: Table, positive: bool) -> Optional[Tuple[ClaimSpec, bool]]:
        numeric = self._numeric_columns(table)
        if not numeric or table.num_rows < 2 or table.key_column is None:
            return None
        column = self._rng.choice(numeric)
        indexes = self._rng.sample(range(table.num_rows), 2)
        row_a, row_b = (table.row(i) for i in indexes)
        value_a, value_b = row_a.numeric(column), row_b.numeric(column)
        subject_a = self._subject_of(table, indexes[0])
        subject_b = self._subject_of(table, indexes[1])
        if value_a is None or value_b is None or value_a == value_b:
            return None
        if not subject_a or not subject_b:
            return None
        truth = Comparison.HIGHER if value_a > value_b else Comparison.LOWER
        direction = truth
        if not positive:
            direction = (
                Comparison.LOWER if truth is Comparison.HIGHER else Comparison.HIGHER
            )
        return ClaimSpec(
            op=ClaimOp.COMPARE,
            column=column,
            subject=subject_a,
            subject_b=subject_b,
            comparison=direction,
        ), positive

    def _make_aggregate(self, table: Table, positive: bool) -> Optional[Tuple[ClaimSpec, bool]]:
        numeric = self._numeric_columns(table)
        if not numeric:
            return None
        column = self._rng.choice(numeric)
        numbers = [n for n in table.column_numbers(column) if n is not None]
        aggregate = self._rng.choice(list(Aggregate))
        if aggregate is Aggregate.SUM:
            actual = sum(numbers)
        elif aggregate is Aggregate.AVG:
            actual = sum(numbers) / len(numbers)
        elif aggregate is Aggregate.MIN:
            actual = min(numbers)
        else:
            actual = max(numbers)
        value = actual if positive else self._perturb_number(actual)
        if not positive and abs(value - actual) <= 5e-3 * max(abs(actual), 1.0):
            return None
        rendered = format_number(round(value, 2))
        return ClaimSpec(
            op=ClaimOp.AGGREGATE, column=column, aggregate=aggregate, value=rendered
        ), positive

    def _make_superlative(self, table: Table, positive: bool) -> Optional[Tuple[ClaimSpec, bool]]:
        numeric = self._numeric_columns(table)
        if not numeric or table.num_rows < 2 or table.key_column is None:
            return None
        column = self._rng.choice(numeric)
        pairs = [
            (row.numeric(column), i)
            for i, row in enumerate(table.iter_rows())
        ]
        pairs = [(v, i) for v, i in pairs if v is not None]
        if len(pairs) < 2:
            return None
        direction = self._rng.choice([Comparison.HIGHER, Comparison.LOWER])
        ordered = sorted(pairs, reverse=(direction is Comparison.HIGHER))
        extreme_value, extreme_index = ordered[0]
        # ambiguous superlative (ties) — skip
        if ordered[1][0] == extreme_value:
            return None
        if positive:
            subject = self._subject_of(table, extreme_index)
        else:
            non_extreme = [i for v, i in ordered[1:] if v != extreme_value]
            subject = self._subject_of(table, self._rng.choice(non_extreme))
        if not subject:
            return None
        return ClaimSpec(
            op=ClaimOp.SUPERLATIVE, column=column, subject=subject, comparison=direction
        ), positive

    def _make_count(self, table: Table, positive: bool) -> Optional[Tuple[ClaimSpec, bool]]:
        categorical = self._categorical_columns(table)
        if not categorical:
            return None
        column = self._rng.choice(categorical)
        values = table.column_values(column)
        if not values:
            return None
        value = self._rng.choice(sorted(set(values)))
        actual = sum(1 for v in values if self._engine.values_match(v, value))
        count = actual
        if not positive:
            offset = self._rng.choice([-2, -1, 1, 2])
            count = max(0, actual + offset)
            if count == actual:
                count = actual + 1
        return ClaimSpec(
            op=ClaimOp.COUNT, column=column, value=value, count=count
        ), positive

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def generate_for_table(
        self,
        table: Table,
        num_claims: int,
        id_prefix: str = "claim",
    ) -> List[GeneratedClaim]:
        """Generate up to ``num_claims`` labelled claims grounded in ``table``.

        Positive/negative labels alternate; every emitted claim is checked
        against the engine so gold labels are guaranteed consistent.
        """
        makers = [
            self._make_lookup,
            self._make_compare,
            self._make_aggregate,
            self._make_superlative,
            self._make_count,
        ]
        out: List[GeneratedClaim] = []
        attempts = 0
        max_attempts = num_claims * 12
        while len(out) < num_claims and attempts < max_attempts:
            attempts += 1
            positive = len(out) % 2 == 0
            maker = self._rng.choice(makers)
            produced = maker(table, positive)
            if produced is None:
                continue
            spec, label = produced
            # sanity: executing the spec against its own table must agree
            result = self._engine.execute(spec, table)
            if result.verdict is None or result.verdict != label:
                continue
            variant = self._rng.random() < self.variation_rate
            text = _render(spec, table.caption, variant=variant)
            claim = Claim(
                claim_id=f"{id_prefix}-{table.table_id}-{len(out)}",
                text=text,
                context=table.caption,
                spec=spec,
            )
            out.append(GeneratedClaim(claim=claim, label=label, table_id=table.table_id))
        return out

    def generate(
        self,
        tables: Sequence[Table],
        claims_per_table: int = 2,
        id_prefix: str = "claim",
    ) -> List[GeneratedClaim]:
        """Generate claims across many tables."""
        out: List[GeneratedClaim] = []
        for table in tables:
            out.extend(
                self.generate_for_table(table, claims_per_table, id_prefix=id_prefix)
            )
        return out
