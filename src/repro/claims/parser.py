"""Natural-language claim parsing.

The parser maps a claim sentence onto one of the five structured
operation classes (:class:`~repro.claims.model.ClaimOp`).  It is the
"table-operations aware" front half of the PASTA-style verifier: PASTA is
pre-trained on sentence-table cloze tasks for exactly these operation
families, which we model as template grammars.

Parsing is intentionally surface-form-driven (as a pre-trained model's
competence is): claims phrased inside the grammar parse reliably; claims
outside it return None, and the verifier falls back to lexical matching.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.claims.model import Aggregate, ClaimOp, ClaimSpec, Comparison
from repro.text import normalize

# The broad grammar: canonical surface forms plus the synonym variants a
# general-purpose model handles.  The strict grammar (what a model
# pre-trained on canonical templates handles) omits the starred variants.
_AGGREGATE_WORDS = {
    "total": Aggregate.SUM,
    "combined": Aggregate.SUM,   # variant
    "average": Aggregate.AVG,
    "mean": Aggregate.AVG,       # variant
    "minimum": Aggregate.MIN,
    "maximum": Aggregate.MAX,
}
_STRICT_AGGREGATE_WORDS = {
    "total": Aggregate.SUM,
    "average": Aggregate.AVG,
    "minimum": Aggregate.MIN,
    "maximum": Aggregate.MAX,
}

_COMPARISON_WORDS = {
    "higher": Comparison.HIGHER,
    "larger": Comparison.HIGHER,   # variant
    "greater": Comparison.HIGHER,  # variant
    "lower": Comparison.LOWER,
    "smaller": Comparison.LOWER,   # variant
    "fewer": Comparison.LOWER,     # variant
}
_STRICT_COMPARISON_WORDS = {
    "higher": Comparison.HIGHER,
    "lower": Comparison.LOWER,
}

_SUPERLATIVE_WORDS = {
    "highest": Comparison.HIGHER,
    "largest": Comparison.HIGHER,  # variant
    "most": Comparison.HIGHER,     # variant
    "lowest": Comparison.LOWER,
    "smallest": Comparison.LOWER,  # variant
    "fewest": Comparison.LOWER,    # variant
}
_STRICT_SUPERLATIVE_WORDS = {
    "highest": Comparison.HIGHER,
    "lowest": Comparison.LOWER,
}


def _build_patterns(strict: bool):
    agg_words = _STRICT_AGGREGATE_WORDS if strict else _AGGREGATE_WORDS
    cmp_words = _STRICT_COMPARISON_WORDS if strict else _COMPARISON_WORDS
    sup_words = _STRICT_SUPERLATIVE_WORDS if strict else _SUPERLATIVE_WORDS
    agg_alt = "|".join(agg_words)
    cmp_alt = "|".join(cmp_words)
    sup_alt = "|".join(sup_words)
    verb = "has" if strict else "(?:has|had|recorded)"
    count_head = (
        r"there are " if strict else r"(?:there are |exactly )?"
    )
    patterns = [
        (
            "aggregate",
            re.compile(
                rf"^the (?P<agg>{agg_alt}) (?!of\b)(?P<column>.+?) "
                rf"(?:in|of|across) (?:the )?(?P<scope>.+?) is (?P<value>.+)$"
            ),
        ),
        (
            "aggregate",
            re.compile(
                rf"^the (?P<agg>{agg_alt}) (?!of\b)(?P<column>.+?) is (?P<value>.+)$"
            ),
        ),
        (
            "compare",
            re.compile(
                rf"^(?P<a>.+?) {verb} (?:a |an )?(?P<dir>{cmp_alt}) "
                rf"(?P<column>.+?) than (?P<b>.+)$"
            ),
        ),
        (
            "superlative",
            re.compile(
                rf"^(?P<subject>.+?) {verb} the (?P<dir>{sup_alt}) "
                rf"(?P<column>[^,]+?)(?: (?:in|of) (?:the )?(?P<scope>.+))?$"
            ),
        ),
        (
            "count",
            re.compile(
                rf"^{count_head}(?P<count>\d+) (?:rows|entries|records) "
                r"(?:with|have|having) (?:a |an )?(?P<column>.+?) of "
                r"(?P<value>.+?)(?: in (?:the )?(?P<scope>.+))?$"
            ),
        ),
        (
            "lookup",
            re.compile(
                r"^the (?P<column>.+?) of (?P<subject>.+?) (?:is|was) (?P<value>.+)$"
            ),
        ),
        (
            "lookup_has",
            re.compile(
                rf"^(?P<subject>.+?) {verb} (?:a |an )?(?P<column>.+?) "
                r"of (?P<value>.+)$"
            ),
        ),
    ]
    if not strict:
        patterns.append(
            (
                "lookup_reversed",
                re.compile(
                    r"^(?P<value>.+?) (?:is|was) the (?P<column>.+?) "
                    r"of (?P<subject>.+)$"
                ),
            )
        )
    return patterns, agg_words, cmp_words, sup_words


_BROAD = _build_patterns(strict=False)
_STRICT = _build_patterns(strict=True)


class ClaimParser:
    """Template-grammar claim parser.

    ``strict=True`` restricts the grammar to canonical surface forms —
    this models a local verifier (PASTA) pre-trained on fixed templates,
    versus a general model that also handles paraphrases.
    """

    def __init__(self, strict: bool = False) -> None:
        self.strict = strict
        (
            self._patterns,
            self._agg_words,
            self._cmp_words,
            self._sup_words,
        ) = _STRICT if strict else _BROAD

    def parse(self, text: str) -> Optional[ClaimSpec]:
        """Parse a claim sentence into a :class:`ClaimSpec`, or None.

        >>> ClaimParser().parse("the party of tom jenkins is republican").op
        <ClaimOp.LOOKUP: 'lookup'>
        """
        sentence = normalize(text).rstrip(".")
        for kind, pattern in self._patterns:
            match = pattern.match(sentence)
            if not match:
                continue
            groups = match.groupdict()
            if kind == "aggregate":
                return ClaimSpec(
                    op=ClaimOp.AGGREGATE,
                    column=groups["column"],
                    aggregate=self._agg_words[groups["agg"]],
                    value=groups["value"],
                )
            if kind == "compare":
                return ClaimSpec(
                    op=ClaimOp.COMPARE,
                    column=groups["column"],
                    subject=groups["a"],
                    subject_b=groups["b"],
                    comparison=self._cmp_words[groups["dir"]],
                )
            if kind == "superlative":
                return ClaimSpec(
                    op=ClaimOp.SUPERLATIVE,
                    column=groups["column"],
                    subject=groups["subject"],
                    comparison=self._sup_words[groups["dir"]],
                )
            if kind == "count":
                return ClaimSpec(
                    op=ClaimOp.COUNT,
                    column=groups["column"],
                    value=groups["value"],
                    count=int(groups["count"]),
                )
            # the three lookup variants
            return ClaimSpec(
                op=ClaimOp.LOOKUP,
                column=groups["column"],
                subject=groups["subject"],
                value=groups["value"],
            )
        return None
