"""Serialization of lake instances to flat strings.

The paper's content-based index "serializes tables or text files as
strings and then indexes them" — these functions define that
serialization, shared by the BM25 index, the embedders, and the prompt
templates so that all components see a consistent rendering.
"""

from __future__ import annotations

from typing import Optional

from repro.datalake.kg import KGEntity
from repro.datalake.types import DataInstance, Row, Table, TextDocument


def serialize_row(row: Row, include_table_id: bool = False) -> str:
    """Render a tuple as ``col1: v1 ; col2: v2 ; ...``.

    >>> from repro.datalake.types import Row
    >>> serialize_row(Row("t1", 0, ("district", "incumbent"), ("ohio 1", "tom")))
    'district: ohio 1 ; incumbent: tom'
    """
    parts = [f"{col}: {val}" for col, val in zip(row.columns, row.values)]
    body = " ; ".join(parts)
    if include_table_id:
        return f"[{row.table_id}] {body}"
    return body


def serialize_table(table: Table, max_rows: Optional[int] = None) -> str:
    """Render a whole table: caption, header, then pipe-separated rows."""
    lines = [table.caption, " | ".join(table.columns)]
    rows = table.rows if max_rows is None else table.rows[:max_rows]
    lines.extend(" | ".join(row) for row in rows)
    return "\n".join(lines)


def serialize_text(doc: TextDocument) -> str:
    """Render a text document: title followed by the body."""
    if doc.title:
        return f"{doc.title}\n{doc.text}"
    return doc.text


def serialize_instance(instance: DataInstance) -> str:
    """Serialize any lake instance for indexing or prompting."""
    if isinstance(instance, Row):
        return serialize_row(instance)
    if isinstance(instance, Table):
        return serialize_table(instance)
    if isinstance(instance, TextDocument):
        return serialize_text(instance)
    if isinstance(instance, KGEntity):
        return instance.serialize()
    raise TypeError(f"not a data instance: {type(instance).__name__}")
