"""Knowledge-graph modality (Section 5 prototype).

The paper lists knowledge graphs among the modalities a multi-modal lake
should eventually support and sketches (text, KG entity) verification as
an open problem.  This module provides a minimal triple store whose
entities serialize into the same indexing path as tuples and text.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set, Tuple


@dataclass(frozen=True)
class KGTriple:
    """A (subject, predicate, object) fact."""

    subject: str
    predicate: str
    obj: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.subject}, {self.predicate}, {self.obj})"


@dataclass
class KGEntity:
    """An entity with its outgoing triples, serializable for indexing."""

    name: str
    triples: List[KGTriple] = field(default_factory=list)

    @property
    def instance_id(self) -> str:
        return f"kg:{self.name.lower().replace(' ', '_')}"

    def serialize(self) -> str:
        """Render the entity as a pseudo-document for the content index."""
        lines = [self.name]
        lines.extend(f"{t.predicate}: {t.obj}" for t in self.triples)
        return "\n".join(lines)


class KnowledgeGraph:
    """A tiny in-memory triple store with entity-centric access."""

    def __init__(self) -> None:
        self._triples: List[KGTriple] = []
        self._by_subject: Dict[str, List[KGTriple]] = {}
        self._triple_set: Set[Tuple[str, str, str]] = set()
        self._slug_to_subject: Dict[str, str] = {}

    def add(self, subject: str, predicate: str, obj: str) -> KGTriple:
        """Add one triple (idempotent); returns the stored triple."""
        key = (subject.lower(), predicate.lower(), obj.lower())
        triple = KGTriple(subject, predicate, obj)
        if key in self._triple_set:
            return triple
        self._triple_set.add(key)
        self._triples.append(triple)
        self._by_subject.setdefault(subject.lower(), []).append(triple)
        slug = subject.lower().replace(" ", "_")
        self._slug_to_subject.setdefault(slug, subject)
        return triple

    def entity_by_id(self, instance_id: str) -> Optional[KGEntity]:
        """Resolve a ``kg:<slug>`` instance id back to an entity."""
        if not instance_id.startswith("kg:"):
            return None
        subject = self._slug_to_subject.get(instance_id[3:])
        if subject is None:
            return None
        return self.entity(subject)

    def entity(self, name: str) -> Optional[KGEntity]:
        """Entity view of ``name``; None when no triples mention it."""
        triples = self._by_subject.get(name.lower())
        if not triples:
            return None
        return KGEntity(name=name, triples=list(triples))

    def objects(self, subject: str, predicate: str) -> List[str]:
        """All objects of (subject, predicate, ?)."""
        return [
            t.obj
            for t in self._by_subject.get(subject.lower(), [])
            if t.predicate.lower() == predicate.lower()
        ]

    def has(self, subject: str, predicate: str, obj: str) -> bool:
        """Membership test, case-insensitive."""
        return (subject.lower(), predicate.lower(), obj.lower()) in self._triple_set

    def entities(self) -> Iterator[KGEntity]:
        """All entities that appear as subjects."""
        for subject, triples in self._by_subject.items():
            yield KGEntity(name=triples[0].subject, triples=list(triples))

    @property
    def num_entities(self) -> int:
        return len(self._by_subject)

    @property
    def num_triples(self) -> int:
        return len(self._triples)
