"""JSON persistence for data lakes.

Lakes built by the workload generators can be saved and reloaded so that
benchmarks do not regenerate corpora on every run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.datalake.lake import DataLake
from repro.datalake.types import Source, Table, TextDocument

_FORMAT_VERSION = 1


def save_lake(lake: DataLake, path: Union[str, Path]) -> None:
    """Serialize ``lake`` to a JSON file at ``path``."""
    payload = {
        "version": _FORMAT_VERSION,
        "name": lake.name,
        "tables": [
            {
                "table_id": t.table_id,
                "caption": t.caption,
                "columns": list(t.columns),
                "rows": [list(row) for row in t.rows],
                "source": {"name": t.source.name, "url": t.source.url},
                "entity_columns": list(t.entity_columns),
                "key_column": t.key_column,
                "metadata": t.metadata,
            }
            for t in lake.tables()
        ],
        "documents": [
            {
                "doc_id": d.doc_id,
                "title": d.title,
                "text": d.text,
                "source": {"name": d.source.name, "url": d.source.url},
                "entity": d.entity,
                "metadata": d.metadata,
            }
            for d in lake.documents()
        ],
        "kg_triples": [
            [t.subject, t.predicate, t.obj]
            for entity in lake.kg.entities()
            for t in entity.triples
        ],
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(payload, handle, ensure_ascii=False)


def load_lake(path: Union[str, Path]) -> DataLake:
    """Load a lake previously written by :func:`save_lake`."""
    with Path(path).open("r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if payload.get("version") != _FORMAT_VERSION:
        raise ValueError(
            f"unsupported lake format version: {payload.get('version')!r}"
        )
    lake = DataLake(name=payload["name"])
    for entry in payload["tables"]:
        lake.add_table(
            Table(
                table_id=entry["table_id"],
                caption=entry["caption"],
                columns=tuple(entry["columns"]),
                rows=[tuple(row) for row in entry["rows"]],
                source=Source(**entry["source"]),
                entity_columns=tuple(entry["entity_columns"]),
                key_column=entry["key_column"],
                metadata=entry["metadata"],
            )
        )
    for entry in payload["documents"]:
        lake.add_document(
            TextDocument(
                doc_id=entry["doc_id"],
                title=entry["title"],
                text=entry["text"],
                source=Source(**entry["source"]),
                entity=entry["entity"],
                metadata=entry["metadata"],
            )
        )
    for subject, predicate, obj in payload.get("kg_triples", []):
        lake.kg.add(subject, predicate, obj)
    return lake
