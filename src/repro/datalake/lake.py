"""The multi-modal data lake catalog.

A :class:`DataLake` is the single repository from which VerifAI's Indexer
retrieves evidence.  It stores tables and text documents (plus an optional
knowledge graph), exposes every unit as a uniformly addressable
:class:`~repro.datalake.types.DataInstance`, and tracks per-source
statistics for the trust model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.datalake.kg import KnowledgeGraph
from repro.datalake.types import (
    DataInstance,
    Modality,
    Row,
    Source,
    Table,
    TextDocument,
)


@dataclass(frozen=True)
class LakeStats:
    """Size summary of a lake (mirrors the corpus statistics in Section 4)."""

    num_tables: int
    num_tuples: int
    num_text_files: int
    num_kg_entities: int
    num_sources: int


class DataLake:
    """In-memory multi-modal data lake with id-addressable instances."""

    def __init__(self, name: str = "lake") -> None:
        self.name = name
        self._tables: Dict[str, Table] = {}
        self._documents: Dict[str, TextDocument] = {}
        self._kg = KnowledgeGraph()
        self._entity_docs: Dict[str, str] = {}  # entity name -> doc_id

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------
    def add_table(self, table: Table) -> None:
        """Register a table (and thereby all its tuples)."""
        if table.table_id in self._tables:
            raise ValueError(f"duplicate table id: {table.table_id}")
        self._tables[table.table_id] = table

    def add_document(self, doc: TextDocument) -> None:
        """Register a text document; entity pages become entity-addressable."""
        if doc.doc_id in self._documents:
            raise ValueError(f"duplicate document id: {doc.doc_id}")
        self._documents[doc.doc_id] = doc
        if doc.entity:
            self._entity_docs.setdefault(doc.entity.lower(), doc.doc_id)

    @property
    def kg(self) -> KnowledgeGraph:
        """The lake's (optional) knowledge-graph modality."""
        return self._kg

    # ------------------------------------------------------------------
    # mutation
    # ------------------------------------------------------------------
    def remove_table(self, table_id: str) -> Table:
        """Deregister a table (and thereby all its tuples); returns it.

        Raises ``KeyError`` when absent.
        """
        return self._tables.pop(table_id)

    def remove_document(self, doc_id: str) -> TextDocument:
        """Deregister a text document; returns it (KeyError when absent).

        If the document was the page for its entity, the entity slot is
        reassigned to the earliest remaining document with the same
        entity — exactly what rebuilding the mapping from the remaining
        documents would produce.
        """
        doc = self._documents.pop(doc_id)
        if doc.entity:
            entity = doc.entity.lower()
            if self._entity_docs.get(entity) == doc_id:
                del self._entity_docs[entity]
                for other in self._documents.values():
                    if other.entity and other.entity.lower() == entity:
                        self._entity_docs[entity] = other.doc_id
                        break
        return doc

    def remove_instance(self, instance_id: str) -> DataInstance:
        """Remove a top-level instance (table or document) by id.

        Returns the removed instance so callers (the Indexer) can
        unindex its derived entries — a table's tuples, a document's
        chunks.  Tuples and KG entities are not individually removable:
        tuples live and die with their table, and raise ``ValueError``.
        """
        if instance_id in self._tables:
            return self.remove_table(instance_id)
        if instance_id in self._documents:
            return self.remove_document(instance_id)
        if "#r" in instance_id or instance_id.startswith("kg:"):
            raise ValueError(
                f"cannot remove {instance_id!r}: only top-level tables "
                "and documents are removable"
            )
        raise KeyError(
            f"no instance with id {instance_id!r} in lake {self.name!r}"
        )

    def update_instance(self, instance: DataInstance) -> DataInstance:
        """Replace the table/document with ``instance``'s id; returns
        the old version.  The id must already be registered (KeyError
        otherwise) and the modality must match (ValueError otherwise).
        """
        if isinstance(instance, Table):
            if instance.table_id not in self._tables:
                raise KeyError(
                    f"no table with id {instance.table_id!r} to update"
                )
            old = self.remove_table(instance.table_id)
            self.add_table(instance)
            return old
        if isinstance(instance, TextDocument):
            if instance.doc_id not in self._documents:
                raise KeyError(
                    f"no document with id {instance.doc_id!r} to update"
                )
            old = self.remove_document(instance.doc_id)
            self.add_document(instance)
            return old
        raise ValueError(
            f"cannot update a {type(instance).__name__}: only tables "
            "and documents are updatable"
        )

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def table(self, table_id: str) -> Table:
        """Table by id; raises KeyError when absent."""
        return self._tables[table_id]

    def document(self, doc_id: str) -> TextDocument:
        """Document by id; raises KeyError when absent."""
        return self._documents[doc_id]

    def entity_page(self, entity: str) -> Optional[TextDocument]:
        """The text page whose subject is ``entity``, if one exists."""
        doc_id = self._entity_docs.get(entity.lower())
        return self._documents[doc_id] if doc_id else None

    def instance(self, instance_id: str) -> DataInstance:
        """Resolve any instance id: table id, ``table#rN`` tuple id, doc
        id, or ``kg:<slug>`` knowledge-graph entity id."""
        if instance_id in self._tables:
            return self._tables[instance_id]
        if instance_id in self._documents:
            return self._documents[instance_id]
        if instance_id.startswith("kg:"):
            entity = self._kg.entity_by_id(instance_id)
            if entity is not None:
                return entity
        if "#r" in instance_id:
            table_id, _, row_part = instance_id.rpartition("#r")
            table = self._tables.get(table_id)
            if table is not None:
                try:
                    index = int(row_part)
                except ValueError:
                    # a malformed row suffix ("t#rfoo") is a lookup miss,
                    # not a caller error — fall through to KeyError
                    index = -1
                if 0 <= index < table.num_rows:
                    return table.row(index)
        raise KeyError(f"no instance with id {instance_id!r} in lake {self.name!r}")

    def __contains__(self, instance_id: str) -> bool:
        try:
            self.instance(instance_id)
        except (KeyError, ValueError):
            return False
        return True

    # ------------------------------------------------------------------
    # iteration
    # ------------------------------------------------------------------
    def tables(self) -> List[Table]:
        """All tables, in insertion order."""
        return list(self._tables.values())

    def documents(self) -> List[TextDocument]:
        """All text documents, in insertion order."""
        return list(self._documents.values())

    def iter_tuples(self) -> Iterator[Row]:
        """Every tuple of every table."""
        for table in self._tables.values():
            yield from table.iter_rows()

    def iter_instances(self, modality: Modality) -> Iterator[DataInstance]:
        """All instances of one modality."""
        if modality is Modality.TABLE:
            yield from self._tables.values()
        elif modality is Modality.TUPLE:
            yield from self.iter_tuples()
        elif modality is Modality.TEXT:
            yield from self._documents.values()
        else:
            raise ValueError(f"cannot iterate modality {modality}")

    def sources(self) -> List[Source]:
        """Distinct sources appearing in the lake."""
        seen: Dict[str, Source] = {}
        for table in self._tables.values():
            seen.setdefault(table.source.name, table.source)
        for doc in self._documents.values():
            seen.setdefault(doc.source.name, doc.source)
        return list(seen.values())

    # ------------------------------------------------------------------
    # stats
    # ------------------------------------------------------------------
    def stats(self) -> LakeStats:
        """Corpus statistics of this lake."""
        return LakeStats(
            num_tables=len(self._tables),
            num_tuples=sum(t.num_rows for t in self._tables.values()),
            num_text_files=len(self._documents),
            num_kg_entities=self._kg.num_entities,
            num_sources=len(self.sources()),
        )

    def __len__(self) -> int:
        stats = self.stats()
        return stats.num_tables + stats.num_text_files

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        stats = self.stats()
        return (
            f"DataLake({self.name!r}, tables={stats.num_tables}, "
            f"tuples={stats.num_tuples}, texts={stats.num_text_files})"
        )
