"""Core datatypes for the multi-modal data lake.

Terminology follows the paper: a *data object* is something a generative
model produced (defined in :mod:`repro.core`); a *data instance* is a unit
of data inside the lake — a tuple (row), a table, or a text file.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from repro.datalake.kg import KGEntity
from repro.text.numbers import parse_number


class Modality(enum.Enum):
    """The modality of a data instance within the lake."""

    TUPLE = "tuple"
    TABLE = "table"
    TEXT = "text"
    KG_ENTITY = "kg_entity"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Source:
    """Provenance tag for a data instance: where it came from in the lake.

    ``name`` identifies the dataset/feed (e.g. ``"tabfact"``,
    ``"wikitable-turl"``); the trust model estimates a reliability score
    per source name.
    """

    name: str
    url: Optional[str] = None

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


@dataclass(frozen=True)
class Row:
    """A single tuple of a table, with its schema attached.

    Cell values are stored as strings exactly as a web table would render
    them; :meth:`numeric` provides typed access.
    """

    table_id: str
    row_index: int
    columns: Tuple[str, ...]
    values: Tuple[str, ...]

    def __post_init__(self) -> None:
        if len(self.columns) != len(self.values):
            raise ValueError(
                f"row {self.table_id}[{self.row_index}] has {len(self.columns)} "
                f"columns but {len(self.values)} values"
            )

    @property
    def instance_id(self) -> str:
        """Stable lake-wide identifier of this tuple."""
        return f"{self.table_id}#r{self.row_index}"

    def as_dict(self) -> Dict[str, str]:
        """Column -> value mapping."""
        return dict(zip(self.columns, self.values))

    def get(self, column: str) -> Optional[str]:
        """Value of ``column`` or None if the column does not exist."""
        try:
            return self.values[self.columns.index(column)]
        except ValueError:
            return None

    def numeric(self, column: str) -> Optional[float]:
        """Value of ``column`` parsed as a number, or None."""
        raw = self.get(column)
        if raw is None:
            return None
        return parse_number(raw)

    def replace_value(self, column: str, value: str) -> "Row":
        """Return a copy of this row with ``column`` set to ``value``."""
        if column not in self.columns:
            raise KeyError(f"column {column!r} not in {self.columns}")
        idx = self.columns.index(column)
        new_values = self.values[:idx] + (value,) + self.values[idx + 1 :]
        return Row(self.table_id, self.row_index, self.columns, new_values)


@dataclass
class Table:
    """A relational table: caption, column names, and rows of string cells.

    ``entity_columns`` marks columns whose cells are entity mentions that
    may link to text pages (the paper harvests Wikipedia text for linked
    cells); ``key_column`` is the subject column used when imputing
    missing values.
    """

    table_id: str
    caption: str
    columns: Tuple[str, ...]
    rows: List[Tuple[str, ...]]
    source: Source = field(default_factory=lambda: Source("unknown"))
    entity_columns: Tuple[str, ...] = ()
    key_column: Optional[str] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.columns = tuple(self.columns)
        self.rows = [tuple(row) for row in self.rows]
        for i, row in enumerate(self.rows):
            if len(row) != len(self.columns):
                raise ValueError(
                    f"table {self.table_id} row {i} has {len(row)} cells, "
                    f"expected {len(self.columns)}"
                )
        self.entity_columns = tuple(self.entity_columns)
        if self.key_column is None and self.columns:
            self.key_column = self.columns[0]

    @property
    def instance_id(self) -> str:
        return self.table_id

    @property
    def num_rows(self) -> int:
        return len(self.rows)

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def row(self, index: int) -> Row:
        """Row at ``index`` as a typed :class:`Row`."""
        return Row(self.table_id, index, self.columns, self.rows[index])

    def iter_rows(self) -> List[Row]:
        """All rows as typed :class:`Row` objects."""
        return [self.row(i) for i in range(len(self.rows))]

    def column_values(self, column: str) -> List[str]:
        """All cell values of ``column`` in row order."""
        idx = self.columns.index(column)
        return [row[idx] for row in self.rows]

    def column_numbers(self, column: str) -> List[Optional[float]]:
        """All cell values of ``column`` parsed as numbers (None on failure)."""
        return [parse_number(value) for value in self.column_values(column)]

    def has_column(self, column: str) -> bool:
        return column in self.columns


@dataclass
class TextDocument:
    """A textual file in the lake (e.g. the text of a Wikipedia page).

    ``entity`` is the page subject when the document is an entity page.
    """

    doc_id: str
    title: str
    text: str
    source: Source = field(default_factory=lambda: Source("unknown"))
    entity: Optional[str] = None
    metadata: Dict[str, Any] = field(default_factory=dict)

    @property
    def instance_id(self) -> str:
        return self.doc_id


DataInstance = Union[Row, Table, TextDocument, KGEntity]


def modality_of(instance: DataInstance) -> Modality:
    """Modality of a lake instance."""
    if isinstance(instance, Row):
        return Modality.TUPLE
    if isinstance(instance, Table):
        return Modality.TABLE
    if isinstance(instance, TextDocument):
        return Modality.TEXT
    if isinstance(instance, KGEntity):
        return Modality.KG_ENTITY
    raise TypeError(f"not a data instance: {type(instance).__name__}")


def instance_id_of(instance: DataInstance) -> str:
    """Lake-wide identifier of a data instance."""
    return instance.instance_id
