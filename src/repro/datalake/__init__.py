"""Multi-modal data lake: datatypes, catalog, serialization, persistence.

The paper's lake stores relational tables and textual files (knowledge
graphs are sketched as a Section 5 extension; a prototype lives in
:mod:`repro.datalake.kg`).  Every unit of data the Indexer can retrieve is
a :class:`DataInstance` with a stable id, a modality, and a source tag
used by the trust model.
"""

from repro.datalake.kg import KnowledgeGraph, KGEntity, KGTriple
from repro.datalake.lake import DataLake, LakeStats
from repro.datalake.persistence import load_lake, save_lake
from repro.datalake.serialize import (
    serialize_row,
    serialize_table,
    serialize_text,
    serialize_instance,
)
from repro.datalake.types import (
    DataInstance,
    Modality,
    Row,
    Source,
    Table,
    TextDocument,
)

__all__ = [
    "DataInstance",
    "DataLake",
    "KGEntity",
    "KGTriple",
    "KnowledgeGraph",
    "LakeStats",
    "Modality",
    "Row",
    "Source",
    "Table",
    "TextDocument",
    "load_lake",
    "save_lake",
    "serialize_instance",
    "serialize_row",
    "serialize_table",
    "serialize_text",
]
