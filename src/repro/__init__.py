"""repro — a full reproduction of *VerifAI: Verified Generative AI*
(Tang, Yang, Fan, Cao; CIDR 2024).

Quickstart::

    from repro import VerifAI, VerifAIConfig
    from repro.workloads import build_lake, LakeConfig
    from repro.verify import ClaimObject

    bundle = build_lake(LakeConfig(num_tables=200))
    system = VerifAI(bundle.lake).build_indexes()
    report = system.verify(
        ClaimObject("c1", "the party of ohio 3 is republican")
    )
    print(report.summary())
    print(system.explain(report))

See :mod:`repro.core` for the pipeline, :mod:`repro.workloads` for the
synthetic corpus, and DESIGN.md for the paper-to-module map.
"""

from repro.core.config import VerifAIConfig
from repro.core.pipeline import (
    STATUS_FAILED,
    STATUS_OK,
    BatchReport,
    VerifAI,
    VerificationReport,
)
from repro.repair import RepairAction, Repairer, RepairReport
from repro.verify.base import VerificationError
from repro.verify.objects import ClaimObject, TupleObject
from repro.verify.verdict import Verdict

__version__ = "1.0.0"

__all__ = [
    "BatchReport",
    "ClaimObject",
    "RepairAction",
    "RepairReport",
    "Repairer",
    "STATUS_FAILED",
    "STATUS_OK",
    "TupleObject",
    "Verdict",
    "VerifAI",
    "VerifAIConfig",
    "VerificationError",
    "VerificationReport",
    "__version__",
]
