"""The simulated chat model.

:class:`SimulatedLLM` exposes one method — :meth:`chat` — and answers
three families of prompts (tuple completion, no-evidence claim QA, and
evidence-grounded verification) in free text, exactly as a hosted model
would.  Its behaviour is fully mechanistic:

* **generation** reads from a noisy parametric memory
  (:class:`~repro.llm.knowledge.WorldKnowledge`);
* **verification** reasons over the evidence *in the prompt* — checking
  relatedness first, then comparing or executing — with the slip rates
  of its :class:`~repro.llm.profile.LLMProfile`;
* all randomness is a deterministic function of (seed, prompt).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.claims.model import ClaimSpec
from repro.claims.parser import ClaimParser
from repro.datalake.types import Table
from repro.llm.knowledge import WorldKnowledge, rng_for
from repro.llm.profile import LLMProfile
from repro.llm.prompts import (
    CLAIM_QA_MARKER,
    COMPLETION_MARKER,
    VERIFICATION_MARKER,
    split_feedback,
    split_sections,
)
from repro.llm.reasoning import NoisyClaimReasoner
from repro.text import analyze, normalize
from repro.text.numbers import numbers_in, parse_number
from repro.text.similarity import jaccard

VERIFIED = "Verified"
REFUTED = "Refuted"
NOT_RELATED = "Not Related"


def _years_in(text: str) -> set:
    """Plausible calendar years mentioned in ``text``."""
    return {int(n) for n in numbers_in(text) if 1900 <= n <= 2100 and n == int(n)}


def _parse_tuple_payload(payload: str) -> Optional[Dict[str, str]]:
    """Parse 'col: v ; col: v' back into a mapping; None if not a tuple."""
    if ": " not in payload or "\n" in payload.strip():
        return None
    fields: Dict[str, str] = {}
    for part in payload.split(" ; "):
        column, sep, value = part.partition(": ")
        if not sep:
            return None
        fields[column.strip()] = value.strip()
    return fields if fields else None


def _parse_table_payload(payload: str) -> Optional[Table]:
    """Parse 'caption \\n header \\n rows...' back into a Table."""
    lines = [line for line in payload.splitlines() if line.strip()]
    if len(lines) < 3:
        return None
    pipe_lines = [line for line in lines if " | " in line]
    if len(pipe_lines) < 2:
        return None
    caption = lines[0] if " | " not in lines[0] else ""
    header = tuple(cell.strip() for cell in pipe_lines[0].split(" | "))
    rows: List[Tuple[str, ...]] = []
    for line in pipe_lines[1:]:
        cells = tuple(cell.strip() for cell in line.split(" | "))
        if len(cells) == len(header):
            rows.append(cells)
    if not rows:
        return None
    return Table(
        table_id="evidence",
        caption=caption,
        columns=header,
        rows=rows,
        key_column=header[0],
    )


class SimulatedLLM:
    """A deterministic stand-in for a hosted chat model."""

    def __init__(
        self,
        knowledge: Optional[WorldKnowledge] = None,
        profile: LLMProfile = LLMProfile(),
        seed: int = 99,
    ) -> None:
        self.knowledge = knowledge
        self.profile = profile
        self.seed = seed
        self._parser = ClaimParser(strict=False)
        self._reasoner = NoisyClaimReasoner(profile)
        self.num_calls = 0

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def chat(self, prompt: str) -> str:
        """Answer one prompt; identical prompts yield identical answers."""
        self.num_calls += 1
        if COMPLETION_MARKER in prompt:
            return self._handle_completion(prompt)
        if VERIFICATION_MARKER in prompt:
            return self._handle_verification(prompt)
        if CLAIM_QA_MARKER in prompt:
            return self._handle_claim_qa(prompt)
        return "I'm not sure how to help with that."

    # ------------------------------------------------------------------
    # tuple completion (generation)
    # ------------------------------------------------------------------
    def _handle_completion(self, prompt: str) -> str:
        if self.knowledge is None:
            return "I do not have enough information to complete this table."
        feedback, iteration = split_feedback(prompt)
        caption = ""
        table_lines: List[str] = []
        for line in prompt.splitlines():
            if line.startswith("Table name:"):
                caption = line.partition(":")[2].strip()
            elif " | " in line:
                table_lines.append(line)
        if len(table_lines) < 2:
            return "I could not find a table in the question."
        header = [cell.strip() for cell in table_lines[0].split(" | ")]
        out_lines = [" | ".join(header)]
        for line in table_lines[1:]:
            cells = [cell.strip() for cell in line.split(" | ")]
            if len(cells) != len(header):
                continue
            key_value = cells[0]
            for index, cell in enumerate(cells):
                if cell != "NaN":
                    continue
                column = header[index]
                if column in feedback:
                    cells[index] = self._revise_cell(
                        caption, key_value, column, feedback[column], iteration
                    )
                    continue
                recalled = self.knowledge.recall_cell(caption, key_value, column)
                if recalled is None:
                    rng = rng_for(self.seed, "hallucinate", caption, key_value, column)
                    recalled = self.knowledge.hallucinate_value(caption, column, rng)
                cells[index] = recalled
            out_lines.append(" | ".join(cells))
        out_lines.append("All missing values have been filled in.")
        return "\n".join(out_lines)

    def _revise_cell(
        self,
        caption: str,
        key_value: str,
        column: str,
        stated: Optional[str],
        iteration: int,
    ) -> str:
        """Answer a disputed cell on a revision round.

        When the verifier's feedback quotes the refuting evidence's
        value, the model adopts it (the grounded path).  When the
        feedback only says the draft failed, the model abandons its
        (already-disputed) memory and guesses again — with an rng keyed
        on the iteration, so each retry is a fresh deterministic draw
        rather than a repeat of the same wrong answer.  Attempt 0 keys
        are untouched, preserving first-draft reproducibility.
        """
        if stated is not None:
            return stated
        rng = rng_for(
            self.seed,
            "hallucinate",
            caption,
            key_value,
            column,
            f"attempt={iteration}",
        )
        return self.knowledge.hallucinate_value(caption, column, rng)

    # ------------------------------------------------------------------
    # claim QA without evidence (headline numbers)
    # ------------------------------------------------------------------
    def _handle_claim_qa(self, prompt: str) -> str:
        statement = ""
        context = ""
        for line in prompt.splitlines():
            if line.startswith("Statement:"):
                statement = line.partition(":")[2].strip()
            elif line.startswith("Context:"):
                context = line.partition(":")[2].strip()
        rng = rng_for(self.seed, "claimqa", statement, context)
        spec = self._parser.parse(statement)
        memory = (
            self.knowledge.recall_table(context or statement)
            if self.knowledge is not None
            else None
        )
        if spec is None or memory is None:
            answer = rng.random() < 0.5
            return (
                f"Answer: {'true' if answer else 'false'}\n"
                "Explanation: I am not certain about this statement."
            )
        result = self._reasoner.execute(spec, memory, rng)
        if result.verdict is None:
            answer = rng.random() < 0.5
            explanation = "I could not ground every part of the statement."
        else:
            answer = result.verdict
            explanation = "; ".join(result.trace) or "Based on what I recall."
        return f"Answer: {'true' if answer else 'false'}\nExplanation: {explanation}"

    # ------------------------------------------------------------------
    # evidence-grounded verification
    # ------------------------------------------------------------------
    def _handle_verification(self, prompt: str) -> str:
        sections = split_sections(prompt)
        evidence = sections["evidence"]
        data = sections["data"]
        attribute = sections["attribute"]
        context = sections["context"]
        rng = rng_for(self.seed, "verify", evidence, data, attribute or "", context or "")

        data_tuple = _parse_tuple_payload(data)
        evidence_tuple = _parse_tuple_payload(evidence)
        evidence_table = _parse_table_payload(evidence)

        if data_tuple is not None:
            if evidence_tuple is not None:
                verdict, why = self._verify_tuple_vs_tuple(
                    data_tuple, evidence_tuple, attribute, rng
                )
            elif evidence_table is not None:
                verdict, why = self._verify_tuple_vs_table(
                    data_tuple, evidence_table, attribute, rng
                )
            else:
                verdict, why = self._verify_tuple_vs_text(
                    data_tuple, evidence, attribute, rng
                )
        else:
            if evidence_table is not None:
                verdict, why = self._verify_claim_vs_table(
                    data, context, evidence_table, rng
                )
            elif evidence_tuple is not None:
                verdict, why = self._verify_claim_vs_tuple(
                    data, evidence_tuple, rng
                )
            else:
                verdict, why = self._verify_claim_vs_text(data, evidence, rng)
        return f"Result: {verdict}\nExplanation: {why}"

    # -- helpers --------------------------------------------------------
    def _maybe_slip_relatedness(self, related: bool, rng: random.Random) -> bool:
        if rng.random() < self.profile.relatedness_slip:
            return not related
        return related

    @staticmethod
    def _find_column(fields: Dict[str, str], name: str) -> Optional[str]:
        target = normalize(name)
        for column in fields:
            if normalize(column) == target:
                return column
        target_tokens = set(analyze(name))
        for column in fields:
            if target_tokens and target_tokens <= set(analyze(column)):
                return column
        return None

    @staticmethod
    def _values_agree(a: str, b: str) -> bool:
        num_a, num_b = parse_number(a), parse_number(b)
        if num_a is not None and num_b is not None:
            return abs(num_a - num_b) <= 1e-6 * max(abs(num_a), abs(num_b), 1.0)
        return normalize(a) == normalize(b)

    # -- (tuple, tuple) --------------------------------------------------
    def _verify_tuple_vs_tuple(
        self,
        data: Dict[str, str],
        evidence: Dict[str, str],
        attribute: Optional[str],
        rng: random.Random,
    ) -> Tuple[str, str]:
        target = attribute or ""
        data_identity = [
            value for column, value in data.items()
            if normalize(column) != normalize(target)
        ]
        identity_tokens = set(analyze(" ".join(data_identity)))
        evidence_tokens = set(analyze(" ".join(evidence.values())))
        overlap = (
            len(identity_tokens & evidence_tokens) / len(identity_tokens)
            if identity_tokens
            else 0.0
        )
        # the leading field of a tuple names its entity; the evidence must
        # describe the *same* entity, not merely share attribute values
        anchor_tokens: set = set()
        for column, value in data.items():
            if normalize(column) != normalize(target):
                anchor_tokens = set(analyze(value))
                break
        anchor_overlap = (
            len(anchor_tokens & evidence_tokens) / len(anchor_tokens)
            if anchor_tokens
            else 1.0
        )
        related = (
            overlap >= self.profile.tuple_overlap_threshold
            and anchor_overlap >= 0.6
        )
        related = self._maybe_slip_relatedness(related, rng)
        if not related:
            return NOT_RELATED, (
                "The evidence tuple does not describe the same entity as the "
                "generated tuple."
            )
        if not target:
            # whole-tuple verification: every shared column must agree
            disagreements = []
            for column, value in data.items():
                evidence_column = self._find_column(evidence, column)
                if evidence_column is None:
                    continue
                if not self._values_agree(value, evidence[evidence_column]):
                    disagreements.append(column)
            if disagreements:
                return REFUTED, f"Values disagree on: {', '.join(disagreements)}."
            return VERIFIED, "All shared attributes agree with the evidence."
        data_column = self._find_column(data, target)
        evidence_column = self._find_column(evidence, target)
        if data_column is None or evidence_column is None:
            return NOT_RELATED, (
                f"The evidence does not contain the attribute {target!r}."
            )
        agree = self._values_agree(data[data_column], evidence[evidence_column])
        if rng.random() < self.profile.lookup_slip:
            agree = not agree
        if agree:
            return VERIFIED, (
                f"The evidence confirms {target} = {evidence[evidence_column]!r}."
            )
        return REFUTED, (
            f"The evidence shows {target} = {evidence[evidence_column]!r}, not "
            f"{data[data_column]!r}."
        )

    # -- (tuple, table) ---------------------------------------------------
    def _verify_tuple_vs_table(
        self,
        data: Dict[str, str],
        table: Table,
        attribute: Optional[str],
        rng: random.Random,
    ) -> Tuple[str, str]:
        # find the table row matching the tuple's identity, then defer to
        # tuple-vs-tuple logic
        identity = {
            column: value
            for column, value in data.items()
            if normalize(column) != normalize(attribute or "")
        }
        best_row: Optional[Dict[str, str]] = None
        best_score = 0.0
        identity_tokens = set(analyze(" ".join(identity.values())))
        for row in table.iter_rows():
            row_tokens = set(analyze(" ".join(row.values)))
            if not identity_tokens:
                continue
            score = len(identity_tokens & row_tokens) / len(identity_tokens)
            if score > best_score:
                best_score = score
                best_row = row.as_dict()
        if best_row is None or best_score < self.profile.tuple_overlap_threshold:
            related = self._maybe_slip_relatedness(False, rng)
            if not related:
                return NOT_RELATED, "No row in the evidence table matches the tuple."
            best_row = table.row(0).as_dict()
        return self._verify_tuple_vs_tuple(data, best_row, attribute, rng)

    # -- (tuple, text) ----------------------------------------------------
    def _verify_tuple_vs_text(
        self,
        data: Dict[str, str],
        text: str,
        attribute: Optional[str],
        rng: random.Random,
    ) -> Tuple[str, str]:
        target = attribute or ""
        normalized_text = normalize(text)
        text_tokens = set(analyze(text))
        # relatedness: the passage must be *about* one of the tuple's
        # identifying entities, not merely mention one in passing — the
        # subject of a page is its title (first line), so anchor there
        first_line, _, _ = text.partition("\n")
        normalized_title = normalize(first_line)
        identifying = [
            value
            for column, value in data.items()
            if normalize(column) != normalize(target)
            and parse_number(value) is None
            and len(value) >= 4
        ]
        if normalized_title and normalized_title != normalized_text:
            related = any(
                normalize(value) in normalized_title for value in identifying
            )
        else:
            related = any(
                normalize(value) in normalized_text for value in identifying
            )
        related = self._maybe_slip_relatedness(related, rng)
        if not related:
            return NOT_RELATED, (
                "The passage does not mention the entity described by the tuple."
            )
        data_column = self._find_column(data, target) if target else None
        if target and data_column is None:
            return NOT_RELATED, f"The tuple has no attribute {target!r}."
        # does the passage discuss the target attribute's concept at all?
        if target:
            column_tokens = set(analyze(target))
            if column_tokens and not column_tokens & text_tokens:
                return NOT_RELATED, (
                    f"The passage does not discuss the attribute {target!r}."
                )
            value = data[data_column]
        else:
            value = " ".join(data.values())
        found = self._value_in_text(
            value, text, normalized_text, column=target or None
        )
        if rng.random() < self.profile.extraction_slip:
            found = not found
        if found:
            return VERIFIED, f"The passage states the value {value!r}."
        return REFUTED, (
            f"The passage discusses this attribute but does not support "
            f"{value!r}."
        )

    @staticmethod
    def _value_in_text(
        value: str,
        text: str,
        normalized_text: str,
        column: Optional[str] = None,
    ) -> bool:
        number = parse_number(value)
        if number is None:
            return normalize(value) in normalized_text
        if not any(abs(n - number) <= 1e-9 for n in numbers_in(text)):
            return False
        # small numbers appear incidentally everywhere ("ohio 1"); a
        # careful reader only counts them when the sentence actually
        # discusses the attribute in question
        if abs(number) >= 1000 or column is None:
            return True
        column_tokens = set(analyze(column))
        if not column_tokens:
            return True
        from repro.text import sentences as split_sentences

        for sentence in split_sentences(text):
            sentence_numbers = numbers_in(sentence)
            if any(abs(n - number) <= 1e-9 for n in sentence_numbers):
                if column_tokens & set(analyze(sentence)):
                    return True
        return False

    # -- (claim, table) ----------------------------------------------------
    def _verify_claim_vs_table(
        self,
        claim_text: str,
        context: Optional[str],
        table: Table,
        rng: random.Random,
    ) -> Tuple[str, str]:
        spec = self._parser.parse(claim_text)
        scope = context or claim_text
        scope_tokens = set(analyze(scope))
        caption_tokens = set(analyze(table.caption))
        caption_sim = jaccard(scope_tokens, caption_tokens)
        scope_years = _years_in(scope)
        caption_years = _years_in(table.caption)
        years_compatible = (
            not scope_years or not caption_years or bool(scope_years & caption_years)
        )
        related = caption_sim >= self.profile.caption_similarity_threshold
        related = related and years_compatible
        if related and spec is not None and spec.subject:
            if self._reasoner._engine.resolve_row(table, spec.subject) is None:
                related = False
        related = self._maybe_slip_relatedness(related, rng)
        if not related:
            if not years_compatible:
                why = (
                    f"The evidence table is for {sorted(caption_years)}, but the "
                    f"claim concerns {sorted(scope_years)}."
                )
            else:
                why = "The evidence table does not cover the claim's scope."
            return NOT_RELATED, why
        if spec is None:
            # lexical fallback: is the claim's content present in the table?
            claim_tokens = set(analyze(claim_text))
            table_tokens = set(analyze(table.caption)) | {
                token
                for row in table.rows
                for cell in row
                for token in analyze(cell)
            }
            coverage = (
                len(claim_tokens & table_tokens) / len(claim_tokens)
                if claim_tokens
                else 0.0
            )
            if coverage >= 0.8 and rng.random() > self.profile.lookup_slip:
                return VERIFIED, "The table mentions all parts of the claim."
            return REFUTED, "Parts of the claim are not supported by the table."
        result = self._reasoner.execute(spec, table, rng)
        if result.verdict is None:
            return NOT_RELATED, "; ".join(result.trace)
        if result.verdict:
            return VERIFIED, "; ".join(result.trace)
        return REFUTED, "; ".join(result.trace)

    # -- (claim, tuple) ----------------------------------------------------
    def _verify_claim_vs_tuple(
        self,
        claim_text: str,
        evidence: Dict[str, str],
        rng: random.Random,
    ) -> Tuple[str, str]:
        spec = self._parser.parse(claim_text)
        evidence_tokens = set(analyze(" ".join(evidence.values())))
        if spec is None or spec.subject is None:
            claim_tokens = set(analyze(claim_text))
            overlap = (
                len(claim_tokens & evidence_tokens) / len(claim_tokens)
                if claim_tokens
                else 0.0
            )
            if overlap < self.profile.tuple_overlap_threshold:
                return NOT_RELATED, "The evidence tuple does not cover the claim."
            return VERIFIED, "The evidence tuple mentions the claim's content."
        subject_tokens = set(analyze(spec.subject))
        if not subject_tokens or not subject_tokens <= evidence_tokens:
            related = self._maybe_slip_relatedness(False, rng)
            if not related:
                return NOT_RELATED, (
                    f"The evidence tuple is not about {spec.subject!r}."
                )
        column = self._find_column(evidence, spec.column)
        if column is None or spec.value is None:
            return NOT_RELATED, (
                f"The evidence tuple has no attribute {spec.column!r}."
            )
        agree = self._values_agree(evidence[column], spec.value)
        if rng.random() < self.profile.lookup_slip:
            agree = not agree
        if agree:
            return VERIFIED, f"The tuple confirms {spec.column} = {spec.value!r}."
        return REFUTED, (
            f"The tuple shows {spec.column} = {evidence[column]!r}, not "
            f"{spec.value!r}."
        )

    # -- (claim, text) — standard fact checking ----------------------------
    def _verify_claim_vs_text(
        self, claim_text: str, text: str, rng: random.Random
    ) -> Tuple[str, str]:
        normalized_text = normalize(text)
        spec = self._parser.parse(claim_text)
        subject = spec.subject if spec is not None else None
        if subject and normalize(subject) not in normalized_text:
            related = self._maybe_slip_relatedness(False, rng)
            if not related:
                return NOT_RELATED, f"The passage is not about {subject!r}."
        if spec is not None and spec.value is not None:
            found = self._value_in_text(
                spec.value, text, normalized_text, column=spec.column
            )
            if rng.random() < self.profile.extraction_slip:
                found = not found
            if found:
                return VERIFIED, f"The passage states {spec.value!r}."
            return REFUTED, f"The passage does not support {spec.value!r}."
        claim_tokens = set(analyze(claim_text))
        text_tokens = set(analyze(text))
        coverage = (
            len(claim_tokens & text_tokens) / len(claim_tokens)
            if claim_tokens
            else 0.0
        )
        if coverage >= 0.8:
            return VERIFIED, "The passage covers the full claim."
        if coverage >= self.profile.tuple_overlap_threshold:
            return REFUTED, "The passage contradicts or omits part of the claim."
        return NOT_RELATED, "The passage does not discuss the claim."
