"""Prompt templates and response parsers.

The templates mirror Section 4 of the paper verbatim in structure (the
tuple-completion prompt and the "Please use the evidence below..."
verification prompt).  Because the simulated model answers in free text,
both sides of the conversation go through real string parsing — the same
brittleness boundary a production deployment has.
"""

from __future__ import annotations

import ast
import re
from typing import List, Optional, Tuple

from repro.datalake.serialize import serialize_row, serialize_table
from repro.datalake.types import Row, Table

COMPLETION_MARKER = "Please fill the missing values, annotated by NaN."
VERIFICATION_MARKER = "Please use the evidence below to validate the generative data."
CLAIM_QA_MARKER = "Answer with true or false."
FEEDBACK_MARKER = "Verifier feedback:"
REVISION_MARKER = "Please revise your previous answer using the feedback."


# ---------------------------------------------------------------------------
# prompt builders
# ---------------------------------------------------------------------------
def tuple_completion_prompt(
    caption: str,
    columns: Tuple[str, ...],
    rows: List[Tuple[str, ...]],
) -> str:
    """The paper's tuple-completion prompt (Section 4)."""
    lines = [
        "Question:",
        f"Table name: {caption}",
        " | ".join(columns),
    ]
    lines.extend(" | ".join(row) for row in rows)
    lines.append(COMPLETION_MARKER)
    return "\n".join(lines)


def tuple_revision_prompt(
    caption: str,
    columns: Tuple[str, ...],
    rows: List[Tuple[str, ...]],
    feedback: List[Tuple[str, Optional[str], str]],
    iteration: int,
) -> str:
    """An orchestrate-until-pass retry of the tuple-completion prompt.

    The original question (with the disputed cell re-masked to NaN) is
    repeated verbatim, followed by one feedback line per disputed
    column.  Each feedback item is ``(column, stated_value, note)``:
    when verification REFUTED the draft and the strongest refuting
    evidence states a value, ``stated_value`` carries it (the note is
    ignored); otherwise ``stated_value`` is None and ``note`` explains
    why the draft failed ("no related evidence was found", ...).

    ``iteration`` is stamped into the prompt so the retry is a
    *different* prompt from the first attempt — a model whose answers
    are a deterministic function of the prompt may then answer
    differently (see :meth:`repro.llm.model.SimulatedLLM.chat`).
    """
    if iteration < 1:
        raise ValueError(f"iteration must be >= 1, got {iteration}")
    lines = [
        "Question:",
        f"Table name: {caption}",
        " | ".join(columns),
    ]
    lines.extend(" | ".join(row) for row in rows)
    lines.append(COMPLETION_MARKER)
    lines.append(FEEDBACK_MARKER)
    for column, stated, note in feedback:
        if stated is not None:
            lines.append(
                f"- {column}: refuted; the evidence states "
                f"{column} = {stated!r}"
            )
        else:
            lines.append(f"- {column}: {note}")
    lines.append(f"Iteration: {iteration}")
    lines.append(REVISION_MARKER)
    return "\n".join(lines)


def verification_prompt(
    evidence: str,
    data: str,
    attribute: Optional[str] = None,
    context: Optional[str] = None,
) -> str:
    """The paper's verification prompt (Section 4).

    ``attribute`` narrows verification to one column (the paper's remark
    on verification metadata); ``context`` names the scope of a claim.
    """
    lines = [
        VERIFICATION_MARKER,
        "Evidence:",
        evidence,
        "Generative Data:",
        data,
    ]
    if attribute:
        lines.append(f"Attribute to verify: {attribute}")
    if context:
        lines.append(f"Context: {context}")
    lines.append("Result: Verified/Refuted/Not Related + Further explanation")
    return "\n".join(lines)


def claim_question_prompt(statement: str, context: str = "") -> str:
    """Ask the model to judge a claim with no evidence (headline numbers)."""
    lines = [
        "Question: Is the following statement true or false?",
        f"Statement: {statement}",
    ]
    if context:
        lines.append(f"Context: {context}")
    lines.append(CLAIM_QA_MARKER)
    return "\n".join(lines)


def evidence_text_for_row(row: Row) -> str:
    """Serialize a tuple for the Evidence slot."""
    return serialize_row(row)


def evidence_text_for_table(table: Table, max_rows: Optional[int] = None) -> str:
    """Serialize a table for the Evidence slot."""
    return serialize_table(table, max_rows=max_rows)


# ---------------------------------------------------------------------------
# response parsers
# ---------------------------------------------------------------------------
_RESULT_RE = re.compile(
    r"result\s*:\s*(verified|refuted|not related)", re.IGNORECASE
)
_ANSWER_RE = re.compile(r"answer\s*:\s*(true|false)", re.IGNORECASE)


def parse_verification_response(text: str) -> Tuple[Optional[str], str]:
    """Extract (verdict, explanation) from a verification response.

    The verdict is one of ``"verified" | "refuted" | "not related"`` or
    None when the response does not follow the format.
    """
    match = _RESULT_RE.search(text)
    if not match:
        return None, text.strip()
    verdict = match.group(1).lower()
    explanation = ""
    for line in text.splitlines():
        if line.lower().startswith("explanation:"):
            explanation = line.partition(":")[2].strip()
            break
    return verdict, explanation


def parse_boolean_response(text: str) -> Optional[bool]:
    """Extract a true/false answer from a claim-QA response."""
    match = _ANSWER_RE.search(text)
    if not match:
        return None
    return match.group(1).lower() == "true"


def parse_completed_table(
    text: str,
) -> Optional[Tuple[Tuple[str, ...], List[Tuple[str, ...]]]]:
    """Parse a completed table (header + pipe-separated rows) from a
    completion response; None when no table is found."""
    lines = [line.strip() for line in text.splitlines() if " | " in line]
    if len(lines) < 2:
        return None
    header = tuple(cell.strip() for cell in lines[0].split(" | "))
    rows: List[Tuple[str, ...]] = []
    for line in lines[1:]:
        cells = tuple(cell.strip() for cell in line.split(" | "))
        if len(cells) == len(header):
            rows.append(cells)
    if not rows:
        return None
    return header, rows


# ---------------------------------------------------------------------------
# prompt structure extraction (used by the simulated model itself)
# ---------------------------------------------------------------------------
_FEEDBACK_VALUE_RE = re.compile(
    r"^- (?P<column>.+?): refuted; the evidence states .+? = (?P<value>.+)$"
)
_FEEDBACK_NOTE_RE = re.compile(r"^- (?P<column>.+?): (?P<note>.+)$")
_ITERATION_RE = re.compile(r"^Iteration:\s*(\d+)$")


def split_feedback(prompt: str) -> Tuple[dict, int]:
    """Extract ``({column: stated value or None}, iteration)`` from a
    revision prompt; ``({}, 0)`` for a plain completion prompt.

    The inverse of :func:`tuple_revision_prompt`'s feedback section —
    the simulated model reads the verifier's findings back through the
    same free-text boundary a hosted model would.
    """
    feedback: dict = {}
    iteration = 0
    in_feedback = False
    for line in prompt.splitlines():
        stripped = line.strip()
        if stripped == FEEDBACK_MARKER:
            in_feedback = True
            continue
        match = _ITERATION_RE.match(stripped)
        if match:
            iteration = int(match.group(1))
            in_feedback = False
            continue
        if not in_feedback or not stripped.startswith("- "):
            continue
        match = _FEEDBACK_VALUE_RE.match(stripped)
        if match:
            try:
                value = ast.literal_eval(match.group("value"))
            except (SyntaxError, ValueError):
                value = match.group("value")
            feedback[match.group("column")] = str(value)
            continue
        match = _FEEDBACK_NOTE_RE.match(stripped)
        if match:
            feedback.setdefault(match.group("column"), None)
    return feedback, iteration


def split_sections(prompt: str) -> dict:
    """Split a verification prompt into its labelled sections."""
    sections = {"evidence": "", "data": "", "attribute": None, "context": None}
    current = None
    body: dict = {"evidence": [], "data": []}
    for line in prompt.splitlines():
        stripped = line.strip()
        if stripped == "Evidence:":
            current = "evidence"
            continue
        if stripped == "Generative Data:":
            current = "data"
            continue
        if stripped.startswith("Attribute to verify:"):
            sections["attribute"] = stripped.partition(":")[2].strip()
            current = None
            continue
        if stripped.startswith("Context:"):
            sections["context"] = stripped.partition(":")[2].strip()
            current = None
            continue
        if stripped.startswith("Result:"):
            current = None
            continue
        if current is not None:
            body[current].append(line)
    sections["evidence"] = "\n".join(body["evidence"]).strip()
    sections["data"] = "\n".join(body["data"]).strip()
    return sections
