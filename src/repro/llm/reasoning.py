"""Noisy table reasoning — how an LLM actually executes a claim.

The simulated model resolves columns and rows the same way the exact
engine does (LLMs are *good* at schema/entity linking) but its
arithmetic slips: every number handled during an aggregation, scan, or
count independently has a chance of being misread.  Consequently lookup
claims verify near-perfectly while sum/average claims over long columns
degrade — which is why ChatGPT trails the exact-execution verifier on
relevant tables in the paper's Table 2.

A slip perturbs the *computed* value, so true claims become refutable
(computed no longer equals claimed) while false claims usually stay
false — the asymmetry seen in practice.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.claims.engine import ExecutionResult, TableQueryEngine
from repro.claims.model import Aggregate, ClaimOp, ClaimSpec, Comparison
from repro.datalake.types import Table
from repro.llm.profile import LLMProfile
from repro.text import normalize
from repro.text.numbers import numbers_equal, parse_number

_UNKNOWN = "unknown"


def _is_unknown(cell: str) -> bool:
    return normalize(cell) == _UNKNOWN


class NoisyClaimReasoner:
    """Claim execution with per-item arithmetic noise."""

    def __init__(self, profile: LLMProfile = LLMProfile()) -> None:
        self.profile = profile
        self._engine = TableQueryEngine()

    # ------------------------------------------------------------------
    # noisy primitives
    # ------------------------------------------------------------------
    def _misread(self, value: float, rng: random.Random) -> float:
        """Perturb a number the way a careless reader would."""
        factor = rng.uniform(1.02, 1.3)
        if rng.random() < 0.5:
            factor = 1.0 / factor
        return value * factor

    def _noisy_numbers(
        self, numbers: List[float], slip: float, rng: random.Random
    ) -> List[float]:
        return [
            self._misread(n, rng) if rng.random() < slip else n for n in numbers
        ]

    def _resolve_row_noisy(self, table: Table, subject: str, rng: random.Random):
        """Row resolution with a chance of binding the wrong row."""
        row = self._engine.resolve_row(table, subject)
        if (
            row is not None
            and table.num_rows > 1
            and rng.random() < self.profile.binding_slip
        ):
            other_indexes = [
                i for i in range(table.num_rows) if i != row.row_index
            ]
            return table.row(rng.choice(other_indexes))
        return row

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def execute(
        self, spec: ClaimSpec, table: Table, rng: random.Random
    ) -> ExecutionResult:
        """Execute ``spec`` against ``table`` with the profile's noise."""
        if spec.op is ClaimOp.LOOKUP:
            return self._lookup(spec, table, rng)
        if spec.op is ClaimOp.COMPARE:
            return self._compare(spec, table, rng)
        if spec.op is ClaimOp.AGGREGATE:
            return self._aggregate(spec, table, rng)
        if spec.op is ClaimOp.SUPERLATIVE:
            return self._superlative(spec, table, rng)
        if spec.op is ClaimOp.COUNT:
            return self._count(spec, table, rng)
        raise ValueError(f"unknown op: {spec.op}")  # pragma: no cover

    def _lookup(
        self, spec: ClaimSpec, table: Table, rng: random.Random
    ) -> ExecutionResult:
        column = self._engine.resolve_column(table, spec.column)
        if column is None:
            return ExecutionResult(None, (f"no column matching {spec.column!r}",))
        assert spec.subject is not None and spec.value is not None
        row = self._resolve_row_noisy(table, spec.subject, rng)
        if row is None:
            return ExecutionResult(None, (f"no row mentioning {spec.subject!r}",))
        cell = row.get(column)
        assert cell is not None
        if _is_unknown(cell):
            return ExecutionResult(None, (f"{column!r} is not grounded",))
        verdict = self._engine.values_match(cell, spec.value)
        if rng.random() < self.profile.lookup_slip:
            verdict = not verdict
        return ExecutionResult(
            verdict,
            (f"read {column} = {cell!r}; claim says {spec.value!r} -> {verdict}",),
        )

    def _compare(
        self, spec: ClaimSpec, table: Table, rng: random.Random
    ) -> ExecutionResult:
        column = self._engine.resolve_column(table, spec.column)
        if column is None:
            return ExecutionResult(None, (f"no column matching {spec.column!r}",))
        assert spec.subject is not None and spec.subject_b is not None
        row_a = self._resolve_row_noisy(table, spec.subject, rng)
        row_b = self._resolve_row_noisy(table, spec.subject_b, rng)
        if row_a is None or row_b is None:
            missing = spec.subject if row_a is None else spec.subject_b
            return ExecutionResult(None, (f"no row mentioning {missing!r}",))
        value_a, value_b = row_a.numeric(column), row_b.numeric(column)
        if value_a is None or value_b is None:
            return ExecutionResult(None, (f"column {column!r} is not numeric",))
        noisy_a, noisy_b = self._noisy_numbers(
            [value_a, value_b], self.profile.lookup_slip, rng
        )
        if spec.comparison is Comparison.HIGHER:
            verdict = noisy_a > noisy_b
        else:
            verdict = noisy_a < noisy_b
        return ExecutionResult(
            verdict,
            (f"read {noisy_a:g} vs {noisy_b:g}; claimed "
             f"{spec.comparison.value} -> {verdict}",),
        )

    def _aggregate(
        self, spec: ClaimSpec, table: Table, rng: random.Random
    ) -> ExecutionResult:
        column = self._engine.resolve_column(table, spec.column)
        if column is None:
            return ExecutionResult(None, (f"no column matching {spec.column!r}",))
        if any(_is_unknown(cell) for cell in table.column_values(column)):
            return ExecutionResult(None, (f"column {column!r} is not fully grounded",))
        numbers = [n for n in table.column_numbers(column) if n is not None]
        if not numbers:
            return ExecutionResult(None, (f"column {column!r} is not numeric",))
        assert spec.aggregate is not None and spec.value is not None
        claimed = parse_number(spec.value)
        if claimed is None:
            return ExecutionResult(None, (f"claimed value {spec.value!r} is not numeric",))
        noisy = self._noisy_numbers(numbers, self.profile.arithmetic_slip, rng)
        if spec.aggregate is Aggregate.SUM:
            computed = sum(noisy)
        elif spec.aggregate is Aggregate.AVG:
            computed = sum(noisy) / len(noisy)
        elif spec.aggregate is Aggregate.MIN:
            computed = min(noisy)
        else:
            computed = max(noisy)
        verdict = numbers_equal(computed, claimed, rel_tol=5e-3)
        return ExecutionResult(
            verdict,
            (f"computed {spec.aggregate.value}({column}) = {computed:g} over "
             f"{len(noisy)} rows; claim says {claimed:g} -> {verdict}",),
        )

    def _superlative(
        self, spec: ClaimSpec, table: Table, rng: random.Random
    ) -> ExecutionResult:
        column = self._engine.resolve_column(table, spec.column)
        if column is None:
            return ExecutionResult(None, (f"no column matching {spec.column!r}",))
        assert spec.subject is not None
        row = self._resolve_row_noisy(table, spec.subject, rng)
        if row is None:
            return ExecutionResult(None, (f"no row mentioning {spec.subject!r}",))
        subject_value = row.numeric(column)
        if subject_value is None:
            return ExecutionResult(None, (f"{column!r} is not numeric",))
        if any(_is_unknown(cell) for cell in table.column_values(column)):
            return ExecutionResult(None, (f"column {column!r} is not fully grounded",))
        numbers = [n for n in table.column_numbers(column) if n is not None]
        noisy = self._noisy_numbers(numbers, self.profile.arithmetic_slip, rng)
        extreme = max(noisy) if spec.comparison is Comparison.HIGHER else min(noisy)
        verdict = numbers_equal(subject_value, extreme)
        return ExecutionResult(
            verdict,
            (f"scanned {len(noisy)} rows; extreme = {extreme:g}, subject has "
             f"{subject_value:g} -> {verdict}",),
        )

    def _count(
        self, spec: ClaimSpec, table: Table, rng: random.Random
    ) -> ExecutionResult:
        column = self._engine.resolve_column(table, spec.column)
        if column is None:
            return ExecutionResult(None, (f"no column matching {spec.column!r}",))
        assert spec.value is not None and spec.count is not None
        if any(_is_unknown(cell) for cell in table.column_values(column)):
            return ExecutionResult(None, (f"column {column!r} is not fully grounded",))
        actual = 0
        for cell in table.column_values(column):
            matched = self._engine.values_match(cell, spec.value)
            if rng.random() < self.profile.arithmetic_slip:
                matched = not matched  # skimmed past / double-counted a row
            if matched:
                actual += 1
        verdict = actual == spec.count
        return ExecutionResult(
            verdict,
            (f"counted {actual} rows with {column} = {spec.value!r}; "
             f"claim says {spec.count} -> {verdict}",),
        )
