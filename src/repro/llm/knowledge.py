"""Parametric world knowledge of the simulated LLM.

The model's "training data" is the same world the lake was built from,
but its memory of it is noisy: each non-key cell is stored correctly
only with probability ``knowledge_coverage``; otherwise a plausible
alternative (a perturbed number, or another value drawn from the same
column's domain) is stored instead.  This is the mechanism behind the
paper's motivating observation that ChatGPT imputes long-tail web-table
values at ~0.5 accuracy.

Each remembered cell is in one of three states: *correct* (probability
``coverage``), *plausibly wrong* (``wrong_rate`` — a perturbed number or
another value from the column's domain), or *absent* (the rest — the
model simply has no memory of the value and must guess or hallucinate).
Corruption is deterministic per (seed, table, row, column), so the same
model always "knows" the same wrong facts — as a fixed checkpoint does.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datalake.types import Table
from repro.text import analyze, normalize
from repro.text.numbers import format_number, parse_number
from repro.text.similarity import jaccard


#: sentinel stored for cells the model has no memory of
UNKNOWN = "unknown"


def rng_for(seed: int, *parts: str) -> random.Random:
    """Deterministic RNG derived from a seed and string parts."""
    digest = hashlib.blake2b(
        ("\x1f".join([str(seed), *parts])).encode("utf-8"), digest_size=8
    ).digest()
    return random.Random(int.from_bytes(digest, "little"))


class WorldKnowledge:
    """A noisy, immutable memory of a collection of tables."""

    def __init__(
        self,
        tables: Sequence[Table],
        coverage: float = 0.55,
        wrong_rate: float = 0.2,
        confusion_rate: float = 0.15,
        seed: int = 1234,
    ) -> None:
        if not 0.0 <= coverage <= 1.0:
            raise ValueError(f"coverage must be in [0, 1], got {coverage}")
        if not 0.0 <= wrong_rate <= 1.0 or coverage + wrong_rate > 1.0:
            raise ValueError(
                f"wrong_rate must be in [0, 1-coverage], got {wrong_rate}"
            )
        if not 0.0 <= confusion_rate <= 1.0:
            raise ValueError(
                f"confusion_rate must be in [0, 1], got {confusion_rate}"
            )
        self.coverage = coverage
        self.wrong_rate = wrong_rate
        self.confusion_rate = confusion_rate
        self.seed = seed
        self._memory: Dict[str, Table] = {}
        self._caption_index: Dict[str, str] = {}
        self._column_domains: Dict[Tuple[str, str], List[str]] = {}
        self._build(tables)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _build(self, tables: Sequence[Table]) -> None:
        # first pass: collect per-(domain, column) value pools for
        # plausible-wrong sampling
        for table in tables:
            domain = str(table.metadata.get("domain", "generic"))
            for column in table.columns:
                pool = self._column_domains.setdefault((domain, column), [])
                pool.extend(table.column_values(column))
        # second pass: corrupt cell values
        by_domain: Dict[str, List[str]] = {}
        for table in tables:
            self._memory[table.table_id] = self._corrupt(table)
            self._caption_index[normalize(table.caption)] = table.table_id
            domain = str(table.metadata.get("domain", "generic"))
            by_domain.setdefault(domain, []).append(table.table_id)
        # third pass: confusion — the model sometimes misattributes a
        # caption to a *similar* table (same domain), the way LLMs mix up
        # the 1996 and 2000 editions of the same table family
        for table in tables:
            rng = rng_for(self.seed, "confuse", table.table_id)
            if rng.random() >= self.confusion_rate:
                continue
            domain = str(table.metadata.get("domain", "generic"))
            siblings = [t for t in by_domain[domain] if t != table.table_id]
            if not siblings:
                continue
            self._caption_index[normalize(table.caption)] = rng.choice(siblings)

    def _plausible_wrong(
        self, table: Table, column: str, actual: str, rng: random.Random
    ) -> str:
        number = parse_number(actual)
        if number is not None and abs(number) > 4:
            factor = rng.uniform(1.05, 1.6)
            if rng.random() < 0.5:
                factor = 1.0 / factor
            wrong = number * factor
            if float(number).is_integer():
                wrong = float(int(round(wrong)))
                if int(wrong) == int(number):
                    wrong = number + rng.choice([-2.0, -1.0, 1.0, 2.0])
            if "," in actual:
                return f"{int(wrong):,}"
            return format_number(round(wrong, 1))
        domain = str(table.metadata.get("domain", "generic"))
        pool = self._column_domains.get((domain, column), [])
        alternatives = sorted({v for v in pool if normalize(v) != normalize(actual)})
        if alternatives:
            return rng.choice(alternatives)
        return actual  # nothing plausible to confuse it with

    def _corrupt(self, table: Table) -> Table:
        protected = {table.key_column}
        new_rows: List[Tuple[str, ...]] = []
        for row_index, row in enumerate(table.rows):
            cells = list(row)
            for col_index, column in enumerate(table.columns):
                if column in protected:
                    continue
                rng = rng_for(
                    self.seed, table.table_id, str(row_index), column
                )
                draw = rng.random()
                if draw < self.coverage:
                    continue
                if draw < self.coverage + self.wrong_rate:
                    cells[col_index] = self._plausible_wrong(
                        table, column, cells[col_index], rng
                    )
                else:
                    cells[col_index] = UNKNOWN
            new_rows.append(tuple(cells))
        return Table(
            table_id=table.table_id,
            caption=table.caption,
            columns=table.columns,
            rows=new_rows,
            source=table.source,
            entity_columns=table.entity_columns,
            key_column=table.key_column,
            metadata=dict(table.metadata),
        )

    # ------------------------------------------------------------------
    # recall
    # ------------------------------------------------------------------
    def recall_table(self, caption: str) -> Optional[Table]:
        """The model's memory of the table best matching ``caption``.

        Exact normalized caption match first; otherwise the highest
        token-overlap caption above 0.5 (the model "recognizes" tables
        it saw in training only approximately).
        """
        key = normalize(caption)
        table_id = self._caption_index.get(key)
        if table_id is not None:
            return self._memory[table_id]
        target = set(analyze(caption))
        if not target:
            return None
        best: Tuple[float, Optional[str]] = (0.0, None)
        for stored_caption, stored_id in self._caption_index.items():
            score = jaccard(target, analyze(stored_caption))
            if score > best[0]:
                best = (score, stored_id)
        if best[0] >= 0.5 and best[1] is not None:
            return self._memory[best[1]]
        return None

    def recall_cell(
        self, caption: str, key_value: str, column: str
    ) -> Optional[str]:
        """What the model believes ``column`` is for the row keyed by
        ``key_value`` in the table named ``caption``; None if it has no
        memory at all (it will then hallucinate from the column domain).
        """
        table = self.recall_table(caption)
        if table is None or table.key_column is None:
            return None
        if column not in table.columns:
            return None
        target = normalize(key_value)
        for row in table.iter_rows():
            key_cell = row.get(table.key_column)
            if key_cell is not None and normalize(key_cell) == target:
                value = row.get(column)
                return None if value == UNKNOWN else value
        return None

    def hallucinate_value(
        self, caption: str, column: str, rng: random.Random
    ) -> str:
        """A made-up but domain-plausible value for a column the model
        has no memory of."""
        table = self.recall_table(caption)
        domain = "generic"
        if table is not None:
            domain = str(table.metadata.get("domain", "generic"))
        pool = self._column_domains.get((domain, column))
        if pool:
            return rng.choice(sorted(set(pool)))
        return "unknown"

    @property
    def num_tables(self) -> int:
        return len(self._memory)
