"""The simulated large language model.

The paper uses ChatGPT in three roles: *generator* (imputing tuple
values, answering questions), *judge without evidence* (the headline
0.52/0.54 accuracies), and *verifier with evidence* (Table 2).
:class:`SimulatedLLM` plays all three with the same operating
characteristics, implemented mechanistically:

* a :class:`WorldKnowledge` store — a noisy parametric memory of the
  corpus, where each cell is remembered correctly only with probability
  ``knowledge_coverage`` (long-tail web-table facts are exactly what
  LLMs half-know);
* a :class:`NoisyClaimReasoner` — table reasoning whose arithmetic
  slips per-item (LLMs are unreliable at multi-step arithmetic but good
  at string lookup);
* evidence-conditioned verification that checks *relatedness first*
  (strong generalization to irrelevant evidence), then grounds its
  verdict in the supplied evidence rather than parametric memory.

Everything is deterministic: per-call randomness derives from a BLAKE2
hash of (seed, prompt), so identical prompts always produce identical
responses regardless of call order.
"""

from repro.llm.knowledge import WorldKnowledge
from repro.llm.model import SimulatedLLM
from repro.llm.profile import LLMProfile
from repro.llm.prompts import (
    claim_question_prompt,
    parse_boolean_response,
    parse_completed_table,
    parse_verification_response,
    tuple_completion_prompt,
    verification_prompt,
)
from repro.llm.reasoning import NoisyClaimReasoner

__all__ = [
    "LLMProfile",
    "NoisyClaimReasoner",
    "SimulatedLLM",
    "WorldKnowledge",
    "claim_question_prompt",
    "parse_boolean_response",
    "parse_completed_table",
    "parse_verification_response",
    "tuple_completion_prompt",
    "verification_prompt",
]
