"""Operating-characteristic profile of the simulated LLM.

Each knob models one empirical property of hosted chat models; defaults
are set so the end-to-end pipeline lands in the paper's reported ranges
without any per-experiment tuning.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class LLMProfile:
    """Tunable error characteristics of a simulated chat model.

    * ``knowledge_coverage`` — probability a long-tail table cell is
      stored correctly in parametric memory (drives the paper's 0.52
      no-evidence imputation accuracy).
    * ``arithmetic_slip`` — per-number probability of a slip while
      aggregating/scanning a column (drives the 0.75 accuracy on
      (text, relevant table): LLMs mis-add long columns).
    * ``lookup_slip`` — probability of misreading a single cell during
      evidence-grounded comparison.
    * ``binding_slip`` — probability of grounding a claim to the wrong
      row of a table (mis-binding the subject).
    * ``extraction_slip`` — probability of mis-extracting a value from a
      text passage.
    * ``relatedness_slip`` — probability of misjudging whether evidence
      is related to the data object at all.
    * ``caption_similarity_threshold`` — minimum token overlap between a
      claim's scope and a table caption before the model treats the
      table as potentially relevant.
    """

    knowledge_coverage: float = 0.55
    arithmetic_slip: float = 0.18
    lookup_slip: float = 0.05
    binding_slip: float = 0.08
    extraction_slip: float = 0.04
    relatedness_slip: float = 0.03
    caption_similarity_threshold: float = 0.8
    tuple_overlap_threshold: float = 0.55

    def __post_init__(self) -> None:
        for name in (
            "knowledge_coverage",
            "arithmetic_slip",
            "lookup_slip",
            "binding_slip",
            "extraction_slip",
            "relatedness_slip",
            "caption_similarity_threshold",
            "tuple_overlap_threshold",
        ):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {value}")
