"""Batch-first execution through the VerifAI pipeline.

``VerifAI.verify_batch`` delegates here.  The engine takes a sequence of
data objects and runs retrieval + rerank + verify for all of them with
three scaling moves the serial loop cannot make:

* **retrieval dedup** — objects that issue the identical retrieval
  (same object type, query text, modality, and depths) share one
  execution; each object still gets the full stage list replayed into
  its own provenance record;
* **thread parallelism** — a ``ThreadPoolExecutor`` fans objects out to
  ``max_workers`` threads (1 = the serial path, the default).  Every
  shared structure the workers touch (verifier outcome cache, payload
  cache, retrieval dedup map, provenance records pre-created in input
  order) is either lock-protected or owned by exactly one worker, and
  all components are deterministic per input, so the parallel run is
  report-for-report identical to the serial one;
* **instrumentation** — per-stage wall time and cache-hit counters are
  collected into a :class:`BatchStats` attached to the
  :class:`~repro.core.pipeline.BatchReport`.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import (
    DEFAULT_MODALITIES,
    BatchReport,
    VerifAI,
    VerificationReport,
)
from repro.datalake.types import DataInstance, Modality
from repro.index.base import SearchHit
from repro.text import analyze_cache_info
from repro.verify.objects import DataObject

#: a cached retrieval: the provenance stages of one (object type, query,
#: modality, depths) execution; the last stage holds the shortlist
_Stages = List[Tuple[str, List[SearchHit]]]


@dataclass
class BatchStats:
    """What one ``verify_batch`` run cost and what the caches saved."""

    objects: int = 0
    max_workers: int = 1
    unique_retrievals: int = 0
    retrieval_cache_hits: int = 0
    verifier_cache_hits: int = 0
    verifier_cache_entries: int = 0
    verifier_cache_size: int = 0
    payload_cache_hits: int = 0
    analyze_cache_hits: int = 0
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        """One-line cost/caching view of the batch."""
        total = self.stage_seconds.get("total", 0.0)
        retrieve = self.stage_seconds.get("retrieve", 0.0)
        verify = self.stage_seconds.get("verify", 0.0)
        return (
            f"{self.objects} objects on {self.max_workers} workers in "
            f"{total:.3f}s (retrieve {retrieve:.3f}s, verify {verify:.3f}s); "
            f"{self.unique_retrievals} unique retrievals "
            f"({self.retrieval_cache_hits} deduped); cache hits: "
            f"{self.verifier_cache_hits} verifier, "
            f"{self.payload_cache_hits} payload, "
            f"{self.analyze_cache_hits} analyze"
        )


class BatchEngine:
    """Run one verification campaign over a ``VerifAI`` system."""

    def __init__(self, system: VerifAI, max_workers: int = 1) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        self.system = system
        self.max_workers = max_workers

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        objects: Sequence[DataObject],
        modalities: Optional[Sequence[Modality]] = None,
        k_coarse: Optional[int] = None,
        k_fine: Optional[int] = None,
    ) -> BatchReport:
        """Verify every object; reports come back in input order."""
        system = self.system
        object_list = list(objects)
        # build (and seal) indexes up front so worker threads never race
        # on the lazy build path
        system.indexer.build()

        verifier_hits_before = system.verifier.cache_hits
        payload_hits_before = system.indexer.payload_cache_hits
        analyze_hits_before = analyze_cache_info().hits
        batch_start = time.perf_counter()

        # provenance records are allocated serially in input order so
        # record ids are deterministic regardless of worker scheduling
        records = [
            system.provenance.new_record(obj.object_id, obj.query_text())
            for obj in object_list
        ]

        retrieval_cache: Dict[tuple, _Stages] = {}
        cache_lock = threading.Lock()
        tallies = {"dedup_hits": 0, "retrieve_s": 0.0, "verify_s": 0.0}
        tally_lock = threading.Lock()

        def modalities_for(obj: DataObject) -> Tuple[Modality, ...]:
            if modalities is not None:
                return tuple(modalities)
            return DEFAULT_MODALITIES.get(type(obj), (Modality.TABLE,))

        def run_one(position: int) -> VerificationReport:
            obj = object_list[position]
            record = records[position]
            retrieve_start = time.perf_counter()
            evidence: List[DataInstance] = []
            dedup_hits = 0
            for modality in modalities_for(obj):
                key = (
                    type(obj).__name__, obj.query_text(), modality,
                    k_coarse, k_fine,
                )
                with cache_lock:
                    stages = retrieval_cache.get(key)
                if stages is None:
                    stages = system.retrieval_stages(
                        obj, modality, k_coarse, k_fine
                    )
                    # a concurrent miss recomputes the same deterministic
                    # stages; first writer wins, results are equal
                    with cache_lock:
                        stages = retrieval_cache.setdefault(key, stages)
                else:
                    dedup_hits += 1
                for stage_name, hits in stages:
                    record.add_stage(stage_name, hits)
                evidence.extend(system.resolve(stages[-1][1]))
            verify_start = time.perf_counter()
            outcomes, final, margin = system.verifier.verify_pool(obj, evidence)
            verify_end = time.perf_counter()
            for outcome in outcomes:
                record.add_outcome(
                    outcome.evidence_id, outcome.verifier, outcome.verdict,
                    outcome.explanation,
                )
            record.final_verdict = int(final)
            record.final_margin = margin
            with tally_lock:
                tallies["dedup_hits"] += dedup_hits
                tallies["retrieve_s"] += verify_start - retrieve_start
                tallies["verify_s"] += verify_end - verify_start
            return VerificationReport(
                object_id=obj.object_id,
                final_verdict=final,
                margin=margin,
                outcomes=outcomes,
                evidence_ids=[o.evidence_id for o in outcomes],
                record_id=record.record_id,
            )

        if self.max_workers == 1 or len(object_list) <= 1:
            reports = [run_one(i) for i in range(len(object_list))]
        else:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                reports = list(pool.map(run_one, range(len(object_list))))

        # generation-log linking is append-order-sensitive; do it once,
        # serially, in input order
        for obj, report in zip(object_list, reports):
            system.generation_log.link_verification(
                obj.object_id, report.record_id
            )

        stats = BatchStats(
            objects=len(object_list),
            max_workers=self.max_workers,
            unique_retrievals=len(retrieval_cache),
            retrieval_cache_hits=tallies["dedup_hits"],
            verifier_cache_hits=system.verifier.cache_hits - verifier_hits_before,
            verifier_cache_entries=len(system.verifier),
            verifier_cache_size=system.verifier.cache_size,
            payload_cache_hits=(
                system.indexer.payload_cache_hits - payload_hits_before
            ),
            analyze_cache_hits=analyze_cache_info().hits - analyze_hits_before,
            stage_seconds={
                "retrieve": tallies["retrieve_s"],
                "verify": tallies["verify_s"],
                "total": time.perf_counter() - batch_start,
            },
        )
        return BatchReport(reports=reports, stats=stats)
