"""Batch-first execution through the VerifAI pipeline.

``VerifAI.verify_batch`` delegates here.  The engine takes a sequence of
data objects and runs retrieval + rerank + verify for all of them with
three scaling moves the serial loop cannot make:

* **retrieval dedup** — objects that issue the identical retrieval
  (same object type, query text, modality, and depths) share one
  execution; each object still gets the full stage list replayed into
  its own provenance record.  The dedup plan is computed up front from
  the inputs alone, so the reported dedup counters (and the ``dedup``
  span attribute) are deterministic regardless of which worker happens
  to execute a shared retrieval first;
* **query-matrix retrieval** — with ``config.batch_matrix_retrieval``
  (the default) the deduplicated queries of each modality are scored
  as *one* query-matrix BM25 pass per index
  (:meth:`VerifAI.retrieval_stages_batch`) that prefills the
  retrieval cache before workers start; the matrix kernel is
  bit-identical to the per-query path, and spans are always replayed
  from the cached stage lists, so reports and traces cannot tell the
  two apart.  A prefill fault falls back to per-object retrieval
  under the normal error boundary;
* **thread parallelism** — a ``ThreadPoolExecutor`` fans objects out to
  ``max_workers`` threads (1 = the serial path, the default).  Every
  shared structure the workers touch (verifier outcome cache, payload
  cache, retrieval dedup map, provenance records pre-created in input
  order) is either lock-protected or owned by exactly one worker, and
  all components are deterministic per input, so the parallel run is
  report-for-report identical to the serial one;
* **observability** — the campaign activates a per-run metrics
  :class:`~repro.obs.metrics.Scope` on every thread that works for it,
  so the :class:`BatchStats` attached to the
  :class:`~repro.core.pipeline.BatchReport` reflects *this* campaign's
  cache traffic even when other campaigns interleave in the same
  process.  ``run(..., trace=True)`` additionally records a span tree
  (``verify_batch`` → per-object ``verify`` → retrieval stages →
  ``verify_pool`` → per-evidence ``verdict``) whose export is
  byte-identical for serial and parallel runs under a deterministic
  clock.

Every object additionally runs inside a **per-object error boundary**:
a fault anywhere in its retrieve→rerank→verify chain never propagates
out of the pool.  The object gets ``max_retries`` extra attempts
(immediate and deterministic — no sleeps or jitter), and if they are
exhausted its report comes back with ``status="FAILED"``, the error
string, and ``final_verdict=NOT_RELATED``, while its provenance record
is finalized with the same failure (never left dangling).  Stage and
outcome writes — and span commits — are deferred until an attempt
succeeds or fails for the last time, so retried attempts never
duplicate provenance or trace spans.  ``fail_fast=True`` restores
raise-on-first-error for callers that prefer a crash (the failing
object's record is still finalized before the raise; records of other
in-flight objects may remain open because the campaign aborted).
"""

from __future__ import annotations

import threading
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import (
    DEFAULT_MODALITIES,
    STATUS_FAILED,
    BatchReport,
    VerifAI,
    VerificationReport,
    format_error,
    safe_query_text,
)
from repro.datalake.types import DataInstance, Modality
from repro.index.base import SearchHit
from repro.obs.events import get_event_log
from repro.obs.metrics import Scope
from repro.obs.profile import StageProfile
from repro.obs.trace import NULL_BRANCH, Span, Tracer
from repro.verify.objects import DataObject
from repro.verify.verdict import Verdict

#: a cached retrieval: the provenance stages of one (object type, query,
#: modality, depths) execution; the last stage holds the shortlist
_Stages = List[Tuple[str, List[SearchHit]]]


@dataclass
class BatchStats:
    """What one ``verify_batch`` run cost and what the caches saved.

    Built from the campaign's metrics :class:`~repro.obs.metrics.Scope`
    (see :meth:`from_scope`), so cache counters attribute to *this*
    campaign's threads rather than to process-wide deltas.
    """

    objects: int = 0
    max_workers: int = 1
    failed: int = 0
    retries: int = 0
    unique_retrievals: int = 0
    retrieval_cache_hits: int = 0
    matrix_batches: int = 0
    verifier_cache_hits: int = 0
    verifier_cache_entries: int = 0
    verifier_cache_size: int = 0
    payload_cache_hits: int = 0
    analyze_cache_hits: int = 0
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    @classmethod
    def from_scope(
        cls,
        scope: Scope,
        *,
        objects: int,
        max_workers: int,
        unique_retrievals: int,
        retrieval_cache_hits: int,
        verifier_cache_entries: int,
        verifier_cache_size: int,
        stage_seconds: Dict[str, float],
    ) -> "BatchStats":
        """Assemble stats from the campaign's scope plus plan-derived
        values the scope cannot know (dedup plan, cache geometry)."""
        return cls(
            objects=objects,
            max_workers=max_workers,
            failed=int(scope.value("batch.failed")),
            retries=int(scope.value("batch.retries")),
            unique_retrievals=unique_retrievals,
            retrieval_cache_hits=retrieval_cache_hits,
            matrix_batches=int(scope.value("batch.matrix_batches")),
            verifier_cache_hits=int(scope.value("verifier.cache.hits")),
            verifier_cache_entries=verifier_cache_entries,
            verifier_cache_size=verifier_cache_size,
            payload_cache_hits=int(
                scope.value("indexer.payload_cache.hits")
            ),
            analyze_cache_hits=int(scope.value("text.analyze_cache.hits")),
            stage_seconds=dict(stage_seconds),
        )

    def per_object_seconds(self) -> Dict[str, float]:
        """Mean seconds per object for each stage, sorted by stage.

        The service path reports these per campaign; an **empty**
        campaign (0 objects) must yield well-formed zero means, never a
        ``ZeroDivisionError`` — long-lived servers see empty batches as
        a matter of course (health probes, drained queues).
        """
        if self.objects <= 0:
            return {name: 0.0 for name in sorted(self.stage_seconds)}
        return {
            name: self.stage_seconds[name] / self.objects
            for name in sorted(self.stage_seconds)
        }

    def to_dict(self) -> Dict[str, object]:
        """Stable JSON-shaped view (the ``/verify-batch`` response body
        carries this); keys sorted, nested dicts sorted too."""
        return {
            "analyze_cache_hits": self.analyze_cache_hits,
            "failed": self.failed,
            "matrix_batches": self.matrix_batches,
            "max_workers": self.max_workers,
            "objects": self.objects,
            "payload_cache_hits": self.payload_cache_hits,
            "per_object_seconds": self.per_object_seconds(),
            "retries": self.retries,
            "retrieval_cache_hits": self.retrieval_cache_hits,
            "stage_seconds": {
                name: self.stage_seconds[name]
                for name in sorted(self.stage_seconds)
            },
            "unique_retrievals": self.unique_retrievals,
            "verifier_cache_entries": self.verifier_cache_entries,
            "verifier_cache_hits": self.verifier_cache_hits,
            "verifier_cache_size": self.verifier_cache_size,
        }

    def summary(self) -> str:
        """One-line cost/caching view of the batch.

        Stage timings print in sorted stage-name order so the line is
        stable however the ``stage_seconds`` dict was populated."""
        stages = ", ".join(
            f"{name} {seconds:.3f}s"
            for name, seconds in sorted(self.stage_seconds.items())
        )
        return (
            f"{self.objects} objects on {self.max_workers} workers "
            f"({stages}); "
            f"{self.failed} failed, {self.retries} retries; "
            f"{self.unique_retrievals} unique retrievals "
            f"({self.retrieval_cache_hits} deduped, "
            f"{self.matrix_batches} matrix batches); cache hits: "
            f"{self.verifier_cache_hits} verifier, "
            f"{self.payload_cache_hits} payload, "
            f"{self.analyze_cache_hits} analyze"
        )


class BatchEngine:
    """Run one verification campaign over a ``VerifAI`` system.

    ``fail_fast`` re-raises the first per-object fault instead of
    reporting it; ``max_retries`` (default
    ``system.config.batch_max_retries``) grants each object that many
    extra attempts before it is reported FAILED.
    """

    def __init__(
        self,
        system: VerifAI,
        max_workers: int = 1,
        fail_fast: bool = False,
        max_retries: Optional[int] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        retries = (
            max_retries if max_retries is not None
            else system.config.batch_max_retries
        )
        if retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {retries}")
        self.system = system
        self.max_workers = max_workers
        self.fail_fast = fail_fast
        self.max_retries = retries

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        objects: Sequence[DataObject],
        modalities: Optional[Sequence[Modality]] = None,
        k_coarse: Optional[int] = None,
        k_fine: Optional[int] = None,
        trace: bool = False,
        profile: bool = False,
    ) -> BatchReport:
        """Verify every object; reports come back in input order.

        ``profile=True`` (implies ``trace``) stamps spans with
        thread-CPU readings and attaches a
        :class:`~repro.obs.profile.StageProfile` to the report; the
        default path builds byte-identical traces to an unprofiled run.
        """
        system = self.system
        clock = system.clock
        registry = system.metrics
        events = get_event_log()
        object_list = list(objects)

        trace = trace or profile
        scope = registry.scope()
        tracer: Optional[Tracer] = None
        root_span: Optional[Span] = None
        # profile-only measurements of work that deliberately emits no
        # span (the matrix prefill): (stack, wall, cpu) entries folded
        # into the StageProfile and subtracted from the root's self time
        profile_extras: List[Tuple[Tuple[str, ...], float, float]] = []
        if trace:
            tracer = Tracer(
                system.next_trace_id(), clock=clock,
                cpu_clock=system.cpu_clock if profile else None,
            )
            # deliberately no worker-count attribute: serial and
            # parallel runs of one campaign must export the same bytes
            root_span = tracer.root(
                "verify_batch", attributes={"objects": len(object_list)}
            )

        # build (and seal) indexes up front so worker threads never race
        # on the lazy build path; build cost is not attributed to the
        # campaign scope.  A traced cold build hangs its spans (sharded
        # builds emit per-shard children) under the campaign root.
        if tracer is not None and not system.indexer.is_built:
            build_cpu_start = system.cpu_clock.now() if profile else 0.0
            build_start = clock.now() if profile else 0.0
            build_branch = tracer.branch()
            system.indexer.build(branch=build_branch, parent=root_span)
            build_branch.commit()
            # a monolithic cold build emits no spans (sharded builds
            # do), so attribute its cost via a profile-only stage — it
            # would otherwise inflate the root's unexplained self time
            if profile and system.config.num_shards <= 1:
                profile_extras.append((
                    ("verify_batch", "index.build"),
                    clock.now() - build_start,
                    system.cpu_clock.now() - build_cpu_start,
                ))
        else:
            system.indexer.build()

        def modalities_for(obj: DataObject) -> Tuple[Modality, ...]:
            if modalities is not None:
                return tuple(modalities)
            return DEFAULT_MODALITIES.get(type(obj), (Modality.TABLE,))

        with registry.activate(scope):
            batch_start = clock.now()

            # provenance records are allocated serially in input order so
            # record ids are deterministic regardless of worker
            # scheduling; a broken query_text() must not abort allocation
            # — the boundary in run_one reports it per object
            records = [
                system.provenance.new_record(
                    obj.object_id, safe_query_text(obj)
                )
                for obj in object_list
            ]
            if tracer is not None:
                for record in records:
                    record.trace_id = tracer.trace_id

            # the dedup plan: which position first issues each retrieval
            # key.  Computed from the inputs alone, so dedup counters and
            # span attributes never depend on worker interleaving.
            def plan_query(obj: DataObject) -> Optional[str]:
                """``query_text()``, or ``None`` for an object too broken
                to plan — its fault is reported by the error boundary in
                ``run_one``; here it just contributes nothing to dedup."""
                try:
                    return obj.query_text()
                except Exception:
                    return None

            plan_first: Dict[tuple, int] = {}
            planned_refs = 0
            for position, obj in enumerate(object_list):
                query = plan_query(obj)
                if query is None:
                    continue
                for modality in modalities_for(obj):
                    key = (
                        type(obj).__name__, query, modality,
                        k_coarse, k_fine,
                    )
                    planned_refs += 1
                    plan_first.setdefault(key, position)
            plan_dedup_hits = planned_refs - len(plan_first)

            retrieval_cache: Dict[tuple, _Stages] = {}
            cache_lock = threading.Lock()

            # query-matrix prefill: score each modality's deduplicated
            # campaign queries in one matrix pass and seed the cache, so
            # workers only ever hit.  The kernel is bit-identical to the
            # per-query path and spans are replayed from stage lists
            # either way, so reports and traces are unchanged; a prefill
            # fault just leaves the cache cold and the per-object error
            # boundary tells the story as usual.
            if system.config.batch_matrix_retrieval and plan_first:
                by_modality: Dict[Modality, List[tuple]] = {}
                for key in plan_first:  # insertion = input order
                    by_modality.setdefault(key[2], []).append(key)
                prefill_cpu_start = (
                    system.cpu_clock.now() if profile else 0.0
                )
                prefill_start = clock.now()
                for modality, keys in by_modality.items():
                    reps = [
                        object_list[plan_first[key]] for key in keys
                    ]
                    try:
                        stage_lists = system.retrieval_stages_batch(
                            reps, modality, k_coarse, k_fine
                        )
                    except Exception:
                        # leave this modality's cache cold: each object
                        # retries its own retrieval inside the normal
                        # per-object error boundary, which reports the
                        # fault properly
                        registry.counter(
                            "batch.matrix_prefill_failures"
                        ).inc()
                        events.emit(
                            "batch.matrix_prefill_failed",
                            modality=modality.value,
                            queries=len(keys),
                        )
                        continue
                    for key, stages in zip(keys, stage_lists):
                        retrieval_cache[key] = stages
                    registry.counter("batch.matrix_batches").inc()
                prefill_end = clock.now()
                registry.histogram("pipeline.retrieve_seconds").observe(
                    prefill_end - prefill_start
                )
                if profile:
                    # the prefill runs inside the root span but emits no
                    # child span (trace shape must not change); record it
                    # as a profile-only stage instead
                    profile_extras.append((
                        ("verify_batch", "retrieve:prefill"),
                        prefill_end - prefill_start,
                        system.cpu_clock.now() - prefill_cpu_start,
                    ))

            def replay_stage_spans(
                branch, parent, stages: _Stages,
                modality: Modality, deduped: bool,
            ) -> None:
                """Emit one span per retrieval stage.  Spans are always
                replayed from the stage list (whether this object
                executed the retrieval or took it from the dedup cache),
                so the trace shape never depends on execution order."""
                fine = (
                    k_fine if k_fine is not None
                    else system.config.fine_k(modality)
                )
                coarse_depth = (
                    k_coarse if k_coarse is not None
                    else system.config.k_coarse
                )
                for stage_name, hits in stages:
                    if stage_name.startswith("coarse:"):
                        span_name = f"retrieve:{stage_name}"
                        # a lone coarse stage retrieves at fine depth
                        depth = coarse_depth if len(stages) > 1 else fine
                    else:
                        span_name = stage_name
                        depth = fine
                    with branch.span(
                        span_name,
                        parent=parent,
                        attributes={
                            "modality": modality.value,
                            "k": depth,
                            "hits": len(hits),
                            "dedup": deduped,
                        },
                    ):
                        pass

            def attempt_one(
                position: int, final_attempt: bool
            ) -> VerificationReport:
                """One guarded attempt; only mutates the provenance
                record after the full chain succeeded, so retries never
                duplicate stages or outcomes.  Spans follow the same
                rule: committed on success or on the final failure,
                discarded on a retried attempt."""
                obj = object_list[position]
                record = records[position]
                branch = (
                    tracer.branch() if tracer is not None else NULL_BRANCH
                )
                try:
                    with branch.span(
                        "verify",
                        parent=root_span,
                        index=position,
                        attributes={"object_id": obj.object_id},
                        record_id=record.record_id,
                    ) as obj_span:
                        retrieve_start = clock.now()
                        stage_log: _Stages = []
                        evidence: List[DataInstance] = []
                        for modality in modalities_for(obj):
                            key = (
                                type(obj).__name__, obj.query_text(),
                                modality, k_coarse, k_fine,
                            )
                            with cache_lock:
                                stages = retrieval_cache.get(key)
                            if stages is None:
                                stages = system.retrieval_stages(
                                    obj, modality, k_coarse, k_fine
                                )
                                # a concurrent miss recomputes the same
                                # deterministic stages; first writer
                                # wins, results are equal
                                with cache_lock:
                                    stages = retrieval_cache.setdefault(
                                        key, stages
                                    )
                            deduped = (
                                plan_first.get(key, position) != position
                            )
                            replay_stage_spans(
                                branch, obj_span, stages, modality, deduped
                            )
                            stage_log.extend(stages)
                            evidence.extend(system.resolve(stages[-1][1]))
                        verify_start = clock.now()
                        with branch.span(
                            "verify_pool",
                            parent=obj_span,
                            attributes={"evidence": len(evidence)},
                        ) as pool_span:
                            outcomes, final, margin = (
                                system.verifier.verify_pool(
                                    obj, evidence,
                                    branch=branch, parent=pool_span,
                                )
                            )
                            pool_span.set("verdict", final.name)
                        obj_span.set("verdict", final.name)
                        verify_end = clock.now()
                except Exception:
                    # the failed attempt's spans (each marked FAILED on
                    # unwind) are the record of what happened — but only
                    # if no retry will produce a cleaner story
                    if final_attempt:
                        branch.commit()
                    else:
                        branch.discard()
                    raise
                branch.commit()
                for stage_name, hits in stage_log:
                    record.add_stage(stage_name, hits)
                record.record_outcomes(outcomes)
                record.finalize(final, margin)
                registry.histogram("pipeline.retrieve_seconds").observe(
                    verify_start - retrieve_start
                )
                registry.histogram("pipeline.verify_seconds").observe(
                    verify_end - verify_start
                )
                return VerificationReport(
                    object_id=obj.object_id,
                    final_verdict=final,
                    margin=margin,
                    outcomes=outcomes,
                    evidence_ids=[o.evidence_id for o in outcomes],
                    record_id=record.record_id,
                )

            def run_one(position: int) -> VerificationReport:
                """The per-object error boundary around ``attempt_one``.

                Re-activates the campaign scope so worker-thread cache
                traffic attributes to this campaign (a no-op on the main
                thread, where the scope is already active)."""
                with registry.activate(scope):
                    attempts = self.max_retries + 1
                    for attempt in range(attempts):
                        final_attempt = attempt + 1 == attempts
                        try:
                            return attempt_one(position, final_attempt)
                        except Exception as exc:
                            if not final_attempt:
                                registry.counter("batch.retries").inc()
                                events.emit(
                                    "batch.retry",
                                    object_id=(
                                        object_list[position].object_id
                                    ),
                                    attempt=attempt + 1,
                                )
                                continue
                            obj = object_list[position]
                            record = records[position]
                            error = format_error(exc)
                            record.mark_failed(error)
                            registry.counter("batch.failed").inc()
                            events.emit(
                                "batch.object_failed",
                                object_id=obj.object_id,
                                error=error,
                            )
                            if self.fail_fast:
                                raise
                            return VerificationReport(
                                object_id=obj.object_id,
                                final_verdict=Verdict.NOT_RELATED,
                                margin=0.0,
                                record_id=record.record_id,
                                status=STATUS_FAILED,
                                error=error,
                            )
                raise AssertionError(
                    "unreachable: attempts >= 1"
                )  # pragma: no cover

            if self.max_workers == 1 or len(object_list) <= 1:
                reports = [run_one(i) for i in range(len(object_list))]
            else:
                with ThreadPoolExecutor(
                    max_workers=self.max_workers
                ) as pool:
                    reports = list(
                        pool.map(run_one, range(len(object_list)))
                    )

            # generation-log linking is append-order-sensitive; do it
            # once, serially, in input order
            for obj, report in zip(object_list, reports):
                system.generation_log.link_verification(
                    obj.object_id, report.record_id
                )

            stats = BatchStats.from_scope(
                scope,
                objects=len(object_list),
                max_workers=self.max_workers,
                unique_retrievals=len(plan_first),
                retrieval_cache_hits=plan_dedup_hits,
                verifier_cache_entries=len(system.verifier),
                verifier_cache_size=system.verifier.cache_size,
                stage_seconds={
                    "retrieve": scope.value("pipeline.retrieve_seconds.sum"),
                    "verify": scope.value("pipeline.verify_seconds.sum"),
                    "total": clock.now() - batch_start,
                },
            )

        campaign_trace = None
        campaign_profile = None
        if tracer is not None:
            tracer.close(root_span)
            campaign_trace = tracer.trace()
            if profile:
                campaign_profile = StageProfile.from_trace(
                    campaign_trace, extras=profile_extras
                )
        return BatchReport(
            reports=reports, stats=stats, trace=campaign_trace,
            profile=campaign_profile,
        )
