"""Batch-first execution through the VerifAI pipeline.

``VerifAI.verify_batch`` delegates here.  The engine takes a sequence of
data objects and runs retrieval + rerank + verify for all of them with
three scaling moves the serial loop cannot make:

* **retrieval dedup** — objects that issue the identical retrieval
  (same object type, query text, modality, and depths) share one
  execution; each object still gets the full stage list replayed into
  its own provenance record;
* **thread parallelism** — a ``ThreadPoolExecutor`` fans objects out to
  ``max_workers`` threads (1 = the serial path, the default).  Every
  shared structure the workers touch (verifier outcome cache, payload
  cache, retrieval dedup map, provenance records pre-created in input
  order) is either lock-protected or owned by exactly one worker, and
  all components are deterministic per input, so the parallel run is
  report-for-report identical to the serial one;
* **instrumentation** — per-stage wall time and cache-hit counters are
  collected into a :class:`BatchStats` attached to the
  :class:`~repro.core.pipeline.BatchReport`.

Every object additionally runs inside a **per-object error boundary**:
a fault anywhere in its retrieve→rerank→verify chain never propagates
out of the pool.  The object gets ``max_retries`` extra attempts
(immediate and deterministic — no sleeps or jitter), and if they are
exhausted its report comes back with ``status="FAILED"``, the error
string, and ``final_verdict=NOT_RELATED``, while its provenance record
is finalized with the same failure (never left dangling).  Stage and
outcome writes are deferred until an attempt succeeds, so retried
attempts never duplicate provenance.  ``fail_fast=True`` restores
raise-on-first-error for callers that prefer a crash (the failing
object's record is still finalized before the raise; records of other
in-flight objects may remain open because the campaign aborted).
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.pipeline import (
    DEFAULT_MODALITIES,
    STATUS_FAILED,
    BatchReport,
    VerifAI,
    VerificationReport,
    format_error,
    safe_query_text,
)
from repro.datalake.types import DataInstance, Modality
from repro.index.base import SearchHit
from repro.text import analyze_cache_info
from repro.verify.objects import DataObject
from repro.verify.verdict import Verdict

#: a cached retrieval: the provenance stages of one (object type, query,
#: modality, depths) execution; the last stage holds the shortlist
_Stages = List[Tuple[str, List[SearchHit]]]


@dataclass
class BatchStats:
    """What one ``verify_batch`` run cost and what the caches saved."""

    objects: int = 0
    max_workers: int = 1
    failed: int = 0
    retries: int = 0
    unique_retrievals: int = 0
    retrieval_cache_hits: int = 0
    verifier_cache_hits: int = 0
    verifier_cache_entries: int = 0
    verifier_cache_size: int = 0
    payload_cache_hits: int = 0
    analyze_cache_hits: int = 0
    stage_seconds: Dict[str, float] = field(default_factory=dict)

    def summary(self) -> str:
        """One-line cost/caching view of the batch."""
        total = self.stage_seconds.get("total", 0.0)
        retrieve = self.stage_seconds.get("retrieve", 0.0)
        verify = self.stage_seconds.get("verify", 0.0)
        return (
            f"{self.objects} objects on {self.max_workers} workers in "
            f"{total:.3f}s (retrieve {retrieve:.3f}s, verify {verify:.3f}s); "
            f"{self.failed} failed, {self.retries} retries; "
            f"{self.unique_retrievals} unique retrievals "
            f"({self.retrieval_cache_hits} deduped); cache hits: "
            f"{self.verifier_cache_hits} verifier, "
            f"{self.payload_cache_hits} payload, "
            f"{self.analyze_cache_hits} analyze"
        )


class BatchEngine:
    """Run one verification campaign over a ``VerifAI`` system.

    ``fail_fast`` re-raises the first per-object fault instead of
    reporting it; ``max_retries`` (default
    ``system.config.batch_max_retries``) grants each object that many
    extra attempts before it is reported FAILED.
    """

    def __init__(
        self,
        system: VerifAI,
        max_workers: int = 1,
        fail_fast: bool = False,
        max_retries: Optional[int] = None,
    ) -> None:
        if max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers}")
        retries = (
            max_retries if max_retries is not None
            else system.config.batch_max_retries
        )
        if retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {retries}")
        self.system = system
        self.max_workers = max_workers
        self.fail_fast = fail_fast
        self.max_retries = retries

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(
        self,
        objects: Sequence[DataObject],
        modalities: Optional[Sequence[Modality]] = None,
        k_coarse: Optional[int] = None,
        k_fine: Optional[int] = None,
    ) -> BatchReport:
        """Verify every object; reports come back in input order."""
        system = self.system
        object_list = list(objects)
        # build (and seal) indexes up front so worker threads never race
        # on the lazy build path
        system.indexer.build()

        verifier_hits_before = system.verifier.cache_hits
        payload_hits_before = system.indexer.payload_cache_hits
        analyze_hits_before = analyze_cache_info().hits
        batch_start = time.perf_counter()

        # provenance records are allocated serially in input order so
        # record ids are deterministic regardless of worker scheduling;
        # a broken query_text() must not abort allocation — the boundary
        # in run_one reports it per object
        records = [
            system.provenance.new_record(obj.object_id, safe_query_text(obj))
            for obj in object_list
        ]

        retrieval_cache: Dict[tuple, _Stages] = {}
        cache_lock = threading.Lock()
        tallies = {
            "dedup_hits": 0, "retries": 0, "failed": 0,
            "retrieve_s": 0.0, "verify_s": 0.0,
        }
        tally_lock = threading.Lock()

        def modalities_for(obj: DataObject) -> Tuple[Modality, ...]:
            if modalities is not None:
                return tuple(modalities)
            return DEFAULT_MODALITIES.get(type(obj), (Modality.TABLE,))

        def attempt_one(position: int) -> VerificationReport:
            """One guarded attempt; only mutates the provenance record
            after the full chain succeeded, so retries never duplicate
            stages or outcomes."""
            obj = object_list[position]
            record = records[position]
            retrieve_start = time.perf_counter()
            stage_log: _Stages = []
            evidence: List[DataInstance] = []
            dedup_hits = 0
            for modality in modalities_for(obj):
                key = (
                    type(obj).__name__, obj.query_text(), modality,
                    k_coarse, k_fine,
                )
                with cache_lock:
                    stages = retrieval_cache.get(key)
                if stages is None:
                    stages = system.retrieval_stages(
                        obj, modality, k_coarse, k_fine
                    )
                    # a concurrent miss recomputes the same deterministic
                    # stages; first writer wins, results are equal
                    with cache_lock:
                        stages = retrieval_cache.setdefault(key, stages)
                else:
                    dedup_hits += 1
                stage_log.extend(stages)
                evidence.extend(system.resolve(stages[-1][1]))
            verify_start = time.perf_counter()
            outcomes, final, margin = system.verifier.verify_pool(obj, evidence)
            verify_end = time.perf_counter()
            for stage_name, hits in stage_log:
                record.add_stage(stage_name, hits)
            record.record_outcomes(outcomes)
            record.finalize(final, margin)
            with tally_lock:
                tallies["dedup_hits"] += dedup_hits
                tallies["retrieve_s"] += verify_start - retrieve_start
                tallies["verify_s"] += verify_end - verify_start
            return VerificationReport(
                object_id=obj.object_id,
                final_verdict=final,
                margin=margin,
                outcomes=outcomes,
                evidence_ids=[o.evidence_id for o in outcomes],
                record_id=record.record_id,
            )

        def run_one(position: int) -> VerificationReport:
            """The per-object error boundary around ``attempt_one``."""
            attempts = self.max_retries + 1
            for attempt in range(attempts):
                try:
                    return attempt_one(position)
                except Exception as exc:
                    if attempt + 1 < attempts:
                        with tally_lock:
                            tallies["retries"] += 1
                        continue
                    obj = object_list[position]
                    record = records[position]
                    error = format_error(exc)
                    record.mark_failed(error)
                    with tally_lock:
                        tallies["failed"] += 1
                    if self.fail_fast:
                        raise
                    return VerificationReport(
                        object_id=obj.object_id,
                        final_verdict=Verdict.NOT_RELATED,
                        margin=0.0,
                        record_id=record.record_id,
                        status=STATUS_FAILED,
                        error=error,
                    )
            raise AssertionError("unreachable: attempts >= 1")  # pragma: no cover

        if self.max_workers == 1 or len(object_list) <= 1:
            reports = [run_one(i) for i in range(len(object_list))]
        else:
            with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
                reports = list(pool.map(run_one, range(len(object_list))))

        # generation-log linking is append-order-sensitive; do it once,
        # serially, in input order
        for obj, report in zip(object_list, reports):
            system.generation_log.link_verification(
                obj.object_id, report.record_id
            )

        stats = BatchStats(
            objects=len(object_list),
            max_workers=self.max_workers,
            failed=tallies["failed"],
            retries=tallies["retries"],
            unique_retrievals=len(retrieval_cache),
            retrieval_cache_hits=tallies["dedup_hits"],
            verifier_cache_hits=system.verifier.cache_hits - verifier_hits_before,
            verifier_cache_entries=len(system.verifier),
            verifier_cache_size=system.verifier.cache_size,
            payload_cache_hits=(
                system.indexer.payload_cache_hits - payload_hits_before
            ),
            analyze_cache_hits=analyze_cache_info().hits - analyze_hits_before,
            stage_seconds={
                "retrieve": tallies["retrieve_s"],
                "verify": tallies["verify_s"],
                "total": time.perf_counter() - batch_start,
            },
        )
        return BatchReport(reports=reports, stats=stats)
