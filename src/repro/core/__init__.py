"""VerifAI — the paper's primary contribution, assembled.

:class:`VerifAI` wires the three modules of Figure 2/3 over a
multi-modal data lake:

* :class:`IndexerModule` — task-agnostic content (BM25) and semantic
  (vector) indexes per modality, merged by the Combiner;
* :class:`RerankerModule` — task-specific rerankers routed by
  (object type, evidence modality);
* :class:`VerifierModule` — an Agent-dispatched verifier pool with
  trust-weighted evidence pooling;

plus cross-cutting provenance (every verification leaves a full lineage
record) and generation logging.
"""

from repro.core.batch import BatchEngine, BatchStats
from repro.core.config import VerifAIConfig
from repro.core.indexer import IndexerModule
from repro.core.pipeline import BatchReport, VerifAI, VerificationReport
from repro.core.reranker import RerankerModule
from repro.core.verifier import VerifierModule

__all__ = [
    "BatchEngine",
    "BatchReport",
    "BatchStats",
    "IndexerModule",
    "RerankerModule",
    "VerifAI",
    "VerifAIConfig",
    "VerificationReport",
    "VerifierModule",
]
