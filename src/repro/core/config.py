"""Pipeline configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.datalake.types import Modality
from repro.index.combiner import FusionMethod

#: the paper's Section 4 retrieval depths: top-3 tuples, top-3 text
#: files, top-5 tables
PAPER_FINE_K = {
    Modality.TUPLE: 3,
    Modality.TEXT: 3,
    Modality.TABLE: 5,
}


@dataclass
class VerifAIConfig:
    """Knobs of the end-to-end pipeline.

    * ``k_coarse`` — task-agnostic retrieval depth (the paper notes k is
      "typically set to a large number (e.g., 100 to 1000)");
    * ``k_fine`` — per-modality shortlist after reranking (defaults to
      the paper's 3/3/5);
    * ``use_semantic_index`` — add the vector index alongside BM25 and
      fuse with the Combiner;
    * ``use_reranker`` — apply the task-specific reranker (off = the
      paper's Section 4 setting, which evaluates raw index retrieval);
    * ``prefer_local`` — Agent policy: route to local verifiers when one
      supports the pair, else the LLM;
    * ``payload_cache_size`` — serialized payloads the Indexer keeps for
      rerankers (LRU entries, not bytes);
    * ``verifier_cache_size`` — (object, evidence) outcomes the Verifier
      memoizes (LRU entries);
    * ``batch_max_workers`` — default worker-thread count for
      :meth:`VerifAI.verify_batch` (1 = serial);
    * ``batch_max_retries`` — extra attempts the batch engine's
      per-object error boundary grants an object whose
      retrieve/rerank/verify raised (0 = fail on the first error).
      Retries are immediate and deterministic — no sleeps or jitter —
      so serial and parallel runs stay report-for-report identical;
    * ``num_shards`` — partition every modality's content + semantic
      index into this many shards by stable hash of the instance id's
      root (1 = the monolithic index).  Scatter-gather search is
      proven hit-for-hit identical to the unsharded build
      (tests/test_index_sharding.py), so this is purely a scale knob;
    * ``shard_build_workers`` — threads used to build shards in
      parallel (0 = one worker per shard, 1 = serial build; only
      meaningful when ``num_shards > 1``);
    * ``shard_search_executor`` — how scatter-gather search fans out
      across shards: ``"serial"`` (default), ``"thread"``, or
      ``"process"`` (workers memmap-attach sealed shard snapshots and
      return compact id/score arrays — no corpus pickling).  Purely a
      wall-clock knob: all three produce identical hits, scores, and
      traces (see :mod:`repro.index.executor`);
    * ``batch_matrix_retrieval`` — let the batch engine score each
      deduplicated campaign's queries as one query-matrix BM25 pass
      per index instead of per-query loops.  Bit-identical to the
      per-query path (differential-tested), so this too is purely a
      throughput knob.
    """

    k_coarse: int = 50
    k_fine: Dict[Modality, int] = field(
        default_factory=lambda: dict(PAPER_FINE_K)
    )
    use_semantic_index: bool = False
    use_reranker: bool = False
    fusion: FusionMethod = FusionMethod.RRF
    embedding_dim: int = 256
    prefer_local: bool = False
    chunk_text: bool = False
    chunk_max_tokens: int = 64
    payload_cache_size: int = 8192
    verifier_cache_size: int = 65536
    batch_max_workers: int = 1
    batch_max_retries: int = 0
    num_shards: int = 1
    shard_build_workers: int = 0
    shard_search_executor: str = "serial"
    batch_matrix_retrieval: bool = True

    def fine_k(self, modality: Modality) -> int:
        """Shortlist size for one modality."""
        return self.k_fine.get(modality, 5)
