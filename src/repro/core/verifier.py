"""The Verifier module: Agent dispatch plus evidence pooling.

Multiple retrieved instances may verify or refute the same object
(Section 3.3's remark); the module pools per-evidence verdicts into a
final decision with a trust-weighted vote, where each vote carries the
trust of the lake source that supplied the evidence.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.datalake.lake import DataLake
from repro.datalake.types import DataInstance, Row
from repro.obs.metrics import get_registry
from repro.obs.trace import NULL_BRANCH
from repro.trust.model import weighted_vote
from repro.verify.agent import VerifierAgent
from repro.verify.base import VerificationOutcome
from repro.verify.objects import DataObject
from repro.verify.verdict import Verdict


def _pair_key(obj: DataObject, evidence: DataInstance) -> tuple:
    """Cache key: the pair's *content*, not object identity."""
    attribute = getattr(obj, "attribute", None)
    context = getattr(obj, "context", None)
    return (
        type(obj).__name__,
        obj.query_text(),
        attribute,
        context,
        evidence.instance_id,
    )


class VerifierModule:
    """Verify an object against a pool of evidence and decide.

    Verification is deterministic per (object content, evidence), so
    repeated pairs — common when benchmarks sweep configurations — are
    served from an in-process LRU cache (``cache=False`` disables it;
    ``cache_size`` bounds it).  The cache is thread-safe: the batch
    engine verifies objects from worker threads.
    """

    def __init__(
        self,
        agent: VerifierAgent,
        lake: DataLake,
        source_trust: Optional[Mapping[str, float]] = None,
        cache: bool = True,
        cache_size: int = 65536,
    ) -> None:
        if cache_size <= 0:
            raise ValueError(f"cache_size must be positive, got {cache_size}")
        self.agent = agent
        self.lake = lake
        self.source_trust: Dict[str, float] = dict(source_trust or {})
        self._cache: Optional["OrderedDict[tuple, VerificationOutcome]"] = (
            OrderedDict() if cache else None
        )
        self._cache_lock = threading.Lock()
        self.cache_size = cache_size
        self.cache_hits = 0
        self._metrics = get_registry()

    def __len__(self) -> int:
        """Number of memoized (object, evidence) outcomes."""
        with self._cache_lock:
            return len(self._cache) if self._cache is not None else 0

    def verify_one(
        self, obj: DataObject, evidence: DataInstance
    ) -> VerificationOutcome:
        """Verify a single pair through the Agent, with caching."""
        outcome, _ = self._verify_one(obj, evidence)
        return outcome

    def _verify_one(
        self, obj: DataObject, evidence: DataInstance
    ) -> Tuple[VerificationOutcome, bool]:
        """(outcome, served-from-cache) for one pair."""
        self._metrics.counter("verifier.verifications").inc()
        if self._cache is None:
            return self.agent.verify(obj, evidence), False
        key = _pair_key(obj, evidence)
        with self._cache_lock:
            cached = self._cache.get(key)
            if cached is not None:
                self.cache_hits += 1
                self._cache.move_to_end(key)
        if cached is not None:
            self._metrics.counter("verifier.cache.hits").inc()
            return cached, True
        self._metrics.counter("verifier.cache.misses").inc()
        # verify outside the lock; a concurrent duplicate recomputes the
        # same deterministic outcome, which is cheaper than serializing
        # every verification behind one mutex
        outcome = self.agent.verify(obj, evidence)
        with self._cache_lock:
            self._cache[key] = outcome
            self._cache.move_to_end(key)
            while len(self._cache) > self.cache_size:
                self._cache.popitem(last=False)
            entries = len(self._cache)
        self._metrics.gauge("verifier.cache.entries").set(entries)
        return outcome, False

    def source_of(self, evidence: DataInstance) -> str:
        """Lake source name of an evidence instance."""
        if isinstance(evidence, Row):
            return self.lake.table(evidence.table_id).source.name
        source = getattr(evidence, "source", None)
        if source is None:  # KG entities have no per-instance source
            return "knowledge-graph"
        return source.name

    def verify_pool(
        self,
        obj: DataObject,
        evidence_list: Sequence[DataInstance],
        branch=None,
        parent=None,
    ) -> Tuple[List[VerificationOutcome], Verdict, float]:
        """Verify against every instance and pool into a final verdict.

        Returns (per-evidence outcomes, final verdict, vote margin).
        When a tracing ``branch`` (and ``parent`` span) is supplied, one
        ``verdict`` span is emitted per evidence instance.  Span
        attributes stay deterministic per input — whether a pair was
        served from the outcome cache is a runtime race under thread
        parallelism, so that lives in the ``verifier.cache.*`` metrics,
        not on the span.
        """
        if branch is None:
            branch = NULL_BRANCH
        outcomes: List[VerificationOutcome] = []
        for evidence in evidence_list:
            with branch.span(
                "verdict",
                parent=parent,
                attributes={"evidence_id": evidence.instance_id},
            ) as span:
                outcome = self.verify_one(obj, evidence)
                span.set("verifier", outcome.verifier)
                span.set("verdict", outcome.verdict.name)
            outcomes.append(outcome)
        votes = [
            (self.source_of(evidence), outcome.verdict)
            for evidence, outcome in zip(evidence_list, outcomes)
        ]
        final, margin = weighted_vote(votes, self.source_trust, default_trust=1.0)
        return outcomes, final, margin
