"""The Indexer module: task-agnostic retrieval over the lake.

Per modality (tuples, tables, text files, KG entities) it maintains a
content-based BM25 index and, optionally, a semantic vector index; the
Combiner fuses their rankings.  All indexes speak instance ids, which
the lake resolves back to data instances.

Text documents may be indexed as sentence-aligned chunks
(``config.chunk_text``): retrieval then scores passages — long pages no
longer drown a single relevant sentence in length normalization — and
chunk hits are folded back to their parent documents.

With ``config.num_shards > 1`` every modality's content + semantic
index is partitioned into N shards by stable hash of the instance id's
root (chunks co-locate with their parent document, tuples with their
parent table), shards build in parallel, and ``search()`` runs
scatter-gather.  Shard results are proven hit-for-hit identical — ids
*and* scores — to the monolithic build (tests/test_index_sharding.py),
so downstream modules never know shards exist.

The module supports the full incremental lifecycle: instances added to
the lake after :meth:`build` fold in with :meth:`add_instance`, and
lake churn flows through :meth:`remove_instance` /
:meth:`update_instance` (tombstone + lazy compaction + re-seal, vector
eviction, payload-cache eviction) — no full rebuild required.
Mutations are single-writer: do not interleave them with concurrent
searches.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis import sanitizer as _sanitizer
from repro.datalake.lake import DataLake
from repro.datalake.serialize import serialize_instance
from repro.datalake.types import DataInstance, Modality, Table, TextDocument
from repro.embed.chunker import chunk_document
from repro.embed.vectorizers import HashingVectorizer
from repro.index.base import SearchHit, SearchIndex
from repro.index.combiner import Combiner, FusionMethod
from repro.index.executor import validate_executor_mode
from repro.index.inverted import InvertedIndex
from repro.index.shard import (
    ShardedInvertedIndex,
    ShardedVectorIndex,
    shard_of,
)
from repro.index.vector import FlatVectorIndex
from repro.core.config import VerifAIConfig
from repro.obs.clock import Clock, MonotonicClock
from repro.obs.metrics import get_registry
from repro.obs.trace import NULL_BRANCH

_INDEXED_MODALITIES = (
    Modality.TUPLE,
    Modality.TABLE,
    Modality.TEXT,
    Modality.KG_ENTITY,
)

#: (shard number, build start, build end, entries built) timings the
#: parallel build reports for metrics and spans
_ShardTiming = Tuple[int, float, float, int]


def _fold_chunks_to_documents(hits: List[SearchHit], k: int) -> List[SearchHit]:
    """Collapse chunk hits (``doc#cN``) onto their parent documents,
    keeping each document's best chunk score.  Documents are re-ranked
    by ``(-score, instance_id)`` afterwards: a document whose best chunk
    appears late in the chunk ranking must not be stuck at the position
    of its first (weaker) chunk."""
    best: Dict[str, SearchHit] = {}
    for hit in hits:
        doc_id = hit.instance_id.split("#c", 1)[0]
        current = best.get(doc_id)
        if current is None or hit.score > current.score:
            best[doc_id] = SearchHit(hit.score, doc_id, hit.index_name)
    return sorted(
        best.values(), key=lambda hit: (-hit.score, hit.instance_id)
    )[:k]


class IndexerModule:
    """Per-modality content + semantic indexes with a Combiner on top."""

    def __init__(
        self,
        lake: DataLake,
        config: Optional[VerifAIConfig] = None,
        clock: Optional[Clock] = None,
    ) -> None:
        self.lake = lake
        self.config = config or VerifAIConfig()
        if self.config.num_shards < 1:
            raise ValueError(
                f"num_shards must be >= 1, got {self.config.num_shards}"
            )
        validate_executor_mode(self.config.shard_search_executor)
        self.clock: Clock = clock or MonotonicClock()
        self._content: Dict[Modality, SearchIndex] = {}
        self._semantic: Dict[Modality, SearchIndex] = {}
        self._combiners: Dict[Modality, Combiner] = {}
        self._vectorizer = HashingVectorizer(dim=self.config.embedding_dim)
        self._built = False
        # guards the lazy build: search()/verify paths may race to build
        # from the batch engine's worker threads
        self._build_lock = threading.Lock()
        # serialized payloads are immutable while an instance is in the
        # lake, so rerankers can share one serialization per instance
        # instead of re-serializing it for every query; remove/update
        # evict, so a mutated instance is never served stale
        self._payload_cache: "OrderedDict[str, str]" = OrderedDict()
        self._payload_lock = threading.Lock()
        self.payload_cache_hits = 0
        self.payload_cache_misses = 0
        self._metrics = get_registry()

    @property
    def is_built(self) -> bool:
        return self._built

    @property
    def num_shards(self) -> int:
        """Configured shard count (1 = monolithic indexes)."""
        return self.config.num_shards

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _payload_entries(self, instance: DataInstance):
        """(index id, payload) entries for one instance — one per chunk
        for text documents when chunking is on."""
        if (
            self.config.chunk_text
            and isinstance(instance, TextDocument)
        ):
            chunks = chunk_document(
                instance, max_tokens=self.config.chunk_max_tokens
            )
            if chunks:
                return [(chunk.chunk_id, chunk.text) for chunk in chunks]
        return [(instance.instance_id, serialize_instance(instance))]

    def _new_content_index(self, modality: Modality) -> SearchIndex:
        if self.config.num_shards > 1:
            return ShardedInvertedIndex(
                self.config.num_shards,
                name=f"bm25-{modality.value}",
                executor=self.config.shard_search_executor,
            )
        return InvertedIndex(name=f"bm25-{modality.value}")

    def _new_semantic_index(self, modality: Modality) -> Optional[SearchIndex]:
        if not self.config.use_semantic_index:
            return None
        if self.config.num_shards > 1:
            return ShardedVectorIndex(
                self.config.num_shards,
                dim=self.config.embedding_dim,
                encoder=self._vectorizer.transform,
                name=f"vec-{modality.value}",
                executor=self.config.shard_search_executor,
            )
        return FlatVectorIndex(
            dim=self.config.embedding_dim,
            encoder=self._vectorizer.transform,
            name=f"vec-{modality.value}",
        )

    def _add_to_indexes(self, modality: Modality, instance: DataInstance) -> None:
        content = self._content[modality]
        semantic = self._semantic.get(modality)
        for index_id, payload in self._payload_entries(instance):
            content.add(index_id, payload)
            if semantic is not None:
                semantic.add(index_id, payload)

    def _modality_entries(self, modality: Modality) -> List[Tuple[str, str]]:
        """Every (index id, payload) entry of one modality, in lake
        iteration order."""
        if modality is Modality.KG_ENTITY:
            return [
                (entity.instance_id, entity.serialize())
                for entity in self.lake.kg.entities()
            ]
        entries: List[Tuple[str, str]] = []
        for instance in self.lake.iter_instances(modality):
            entries.extend(self._payload_entries(instance))
        return entries

    def build(self, branch=None, parent=None) -> "IndexerModule":
        """Index every instance of every modality (idempotent, and safe
        to race: the first caller builds under the lock, later callers
        see the completed indexes).

        A tracing ``branch`` (plus ``parent`` span) emits one
        ``index.build:<modality>`` span per modality with per-shard
        children when the build is sharded.
        """
        if self._built:
            return self
        with self._build_lock:
            if self._built:
                return self
            self._build_locked(branch=branch or NULL_BRANCH, parent=parent)
        return self

    def _build_locked(self, branch=NULL_BRANCH, parent=None) -> None:
        for modality in _INDEXED_MODALITIES:
            content = self._new_content_index(modality)
            self._content[modality] = content
            semantic = self._new_semantic_index(modality)
            if semantic is not None:
                self._semantic[modality] = semantic
            entries = self._modality_entries(modality)
            if self.config.num_shards > 1:
                timings = self._build_shards(content, semantic, entries)
                self._record_shard_build(branch, parent, modality, timings)
            else:
                for index_id, payload in entries:
                    content.add(index_id, payload)
                    if semantic is not None:
                        semantic.add(index_id, payload)
            indexes: List[SearchIndex] = [content]
            if semantic is not None:
                indexes.append(semantic)
            self._combiners[modality] = Combiner(
                indexes,
                method=self.config.fusion,
                name=f"combined-{modality.value}",
            )
        self.seal_indexes()
        self._metrics.gauge("indexer.shard.count").set(self.config.num_shards)
        self._built = True

    def _build_shards(
        self,
        content: ShardedInvertedIndex,
        semantic: Optional[ShardedVectorIndex],
        entries: Sequence[Tuple[str, str]],
    ) -> List[_ShardTiming]:
        """Partition the entries and build every shard, in parallel when
        ``config.shard_build_workers`` allows.

        Each shard is written by exactly one worker (the partition is
        disjoint), so the build needs no locks; indexes are added to
        shard sub-indexes directly, skipping the wrapper's per-add
        seal invalidation (nothing is sealed yet).
        """
        num_shards = self.config.num_shards
        buckets: List[List[Tuple[str, str]]] = [[] for _ in range(num_shards)]
        for entry in entries:
            buckets[shard_of(entry[0], num_shards)].append(entry)

        def build_one(shard_no: int) -> _ShardTiming:
            start = self.clock.now()
            content_shard = content.shards[shard_no]
            semantic_shard = (
                semantic.shards[shard_no] if semantic is not None else None
            )
            for index_id, payload in buckets[shard_no]:
                content_shard.add(index_id, payload)
                if semantic_shard is not None:
                    semantic_shard.add(index_id, payload)
            return shard_no, start, self.clock.now(), len(buckets[shard_no])

        workers = self.config.shard_build_workers or num_shards
        if workers > 1:
            with ThreadPoolExecutor(
                max_workers=min(workers, num_shards)
            ) as pool:
                timings = list(pool.map(build_one, range(num_shards)))
        else:
            timings = [build_one(i) for i in range(num_shards)]
        return timings

    def _record_shard_build(
        self, branch, parent, modality: Modality, timings: List[_ShardTiming]
    ) -> None:
        """Report per-shard build metrics, and spans when tracing.

        Span indexes are the shard numbers, so the trace shape is
        identical however the parallel build interleaved; start/end are
        backfilled from the worker-measured times."""
        build_seconds = self._metrics.histogram("indexer.shard.build_seconds")
        for _, start, end, _ in timings:
            build_seconds.observe(end - start)
        self._metrics.counter("indexer.shard.builds").inc(len(timings))
        if branch is None or branch is NULL_BRANCH:
            return
        with branch.span(
            f"index.build:{modality.value}",
            parent=parent,
            attributes={
                "modality": modality.value,
                "shards": len(timings),
            },
        ) as mod_span:
            shard_spans = []
            for shard_no, start, end, entry_count in timings:
                with branch.span(
                    "index.build.shard",
                    parent=mod_span,
                    index=shard_no,
                    attributes={"shard": shard_no, "entries": entry_count},
                ) as shard_span:
                    shard_spans.append((shard_span, start, end))
        # replace open/close stamps with the worker-measured windows
        for shard_span, start, end in shard_spans:
            shard_span.start = start
            shard_span.end = end
        if timings:
            mod_span.start = min(t[1] for t in timings)
            mod_span.end = max(t[2] for t in timings)

    # ------------------------------------------------------------------
    # incremental updates
    # ------------------------------------------------------------------
    def add_instance(self, instance: DataInstance) -> None:
        """Fold a newly added lake instance into the live indexes.

        Tables also index each of their tuples (matching :meth:`build`'s
        coverage).  The instance must already be registered in the lake.
        """
        if not self._built:
            self.build()
            return
        if isinstance(instance, Table):
            self._add_to_indexes(Modality.TABLE, instance)
            for row in instance.iter_rows():
                self._add_to_indexes(Modality.TUPLE, row)
        elif isinstance(instance, TextDocument):
            self._add_to_indexes(Modality.TEXT, instance)
        else:
            self._add_to_indexes(Modality.TUPLE, instance)
        self._metrics.counter("indexer.mutations.added").inc()

    def remove_instance(self, instance: DataInstance) -> None:
        """Unindex an instance that was removed from the lake.

        Takes the removed instance itself (what
        :meth:`DataLake.remove_instance` returns) because its derived
        index entries — a table's tuples, a chunked document's chunks —
        are recomputed from it.  Content indexes tombstone and compact
        lazily on the next read; vector and payload-cache entries are
        evicted eagerly.  Before :meth:`build` the indexes need nothing
        (the next build reads the already-mutated lake), but the
        payload cache predates the build and must still evict, or
        :meth:`fetch_payload` keeps serving an instance the lake no
        longer holds.
        """
        if not self._built:
            self._evict_instance_payloads(instance)
            return
        if isinstance(instance, Table):
            self._remove_from_indexes(Modality.TABLE, instance)
            for row in instance.iter_rows():
                self._remove_from_indexes(Modality.TUPLE, row)
        elif isinstance(instance, TextDocument):
            self._remove_from_indexes(Modality.TEXT, instance)
        else:
            self._remove_from_indexes(Modality.TUPLE, instance)
        self._metrics.counter("indexer.mutations.removed").inc()

    def update_instance(
        self, old: DataInstance, new: DataInstance
    ) -> None:
        """Replace an instance's index entries with its new version.

        Needs both versions: the old one names the entries to drop
        (its chunk/tuple ids may differ from the new one's), the new
        one is what :meth:`DataLake.update_instance` registered.
        Before :meth:`build` only the payload cache needs work: the old
        version's cached serializations are evicted so
        :meth:`fetch_payload` re-serializes the new one.
        """
        if old.instance_id != new.instance_id:
            raise ValueError(
                f"update must keep the instance id: "
                f"{old.instance_id!r} != {new.instance_id!r}"
            )
        if not self._built:
            self._evict_instance_payloads(old)
            return
        self.remove_instance(old)
        self.add_instance(new)
        self._metrics.counter("indexer.mutations.updated").inc()

    def _remove_from_indexes(
        self, modality: Modality, instance: DataInstance
    ) -> None:
        content = self._content[modality]
        semantic = self._semantic.get(modality)
        for index_id, _ in self._payload_entries(instance):
            content.remove(index_id)
            if semantic is not None:
                semantic.remove(index_id)
        self._evict_payload(instance.instance_id)

    def _evict_instance_payloads(self, instance: DataInstance) -> None:
        """Evict every payload-cache entry an instance can be fetched
        under: its own id, and — for tables — each row's tuple id."""
        self._evict_payload(instance.instance_id)
        if isinstance(instance, Table):
            for row in instance.iter_rows():
                self._evict_payload(row.instance_id)

    def _evict_payload(self, instance_id: str) -> None:
        """Drop one instance's cached serialization (coherence with
        remove/update; a miss is fine)."""
        with self._payload_lock:
            self._payload_cache.pop(instance_id, None)
            entries = len(self._payload_cache)
        self._metrics.gauge("indexer.payload_cache.entries").set(entries)

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search(
        self, query: str, modality: Modality, k: Optional[int] = None
    ) -> List[SearchHit]:
        """Coarse top-k for one modality (content + semantic fused).

        With shards configured this is a scatter-gather: every shard
        answers, the merged ranking is provably identical to the
        monolithic index's."""
        if not self._built:
            self.build()
        self._metrics.counter(f"indexer.search.{modality.value}").inc()
        if self.config.num_shards > 1:
            self._metrics.counter("indexer.shard.search.fanout").inc(
                self.config.num_shards
            )
        depth = k if k is not None else self.config.k_coarse
        if modality is Modality.TEXT and self.config.chunk_text:
            raw = self._combiners[modality].search(query, depth * 3)
            return _fold_chunks_to_documents(raw, depth)
        return self._combiners[modality].search(query, depth)

    def search_batch(
        self, queries: List[str], modality: Modality, k: Optional[int] = None
    ) -> List[List[SearchHit]]:
        """Coarse top-k for a whole query batch against one modality.

        One query-matrix pass per underlying index scores every query
        at once; fusion, chunk folding, and metrics then mirror
        :meth:`search` per query, so the hit lists are identical to
        ``[self.search(q, modality, k) for q in queries]`` — the batch
        engine relies on that to swap this in transparently.
        """
        queries = list(queries)
        if not queries:
            return []
        if not self._built:
            self.build()
        self._metrics.counter(f"indexer.search.{modality.value}").inc(
            len(queries)
        )
        if self.config.num_shards > 1:
            self._metrics.counter("indexer.shard.search.fanout").inc(
                self.config.num_shards * len(queries)
            )
        depth = k if k is not None else self.config.k_coarse
        combiner = self._combiners[modality]
        if modality is Modality.TEXT and self.config.chunk_text:
            raw_lists = combiner.search_batch(queries, depth * 3)
            return [
                _fold_chunks_to_documents(raw, depth) for raw in raw_lists
            ]
        return combiner.search_batch(queries, depth)

    def content_index(self, modality: Modality) -> SearchIndex:
        """Direct access to one modality's BM25 index (for ablations).

        An :class:`InvertedIndex`, or a :class:`ShardedInvertedIndex`
        when ``config.num_shards > 1``."""
        if not self._built:
            self.build()
        return self._content[modality]

    def semantic_index(self, modality: Modality) -> Optional[SearchIndex]:
        """Direct access to one modality's vector index, if enabled."""
        if not self._built:
            self.build()
        return self._semantic.get(modality)

    def seal_indexes(self) -> "IndexerModule":
        """Compile every content index's vectorized read form up front
        (otherwise sealing happens lazily on first search)."""
        for index in self._content.values():
            if index.auto_seal:
                index.seal()
        return self

    def fetch_payload(self, instance_id: str) -> str:
        """Serialized payload of any indexed instance, LRU-cached.

        Cache entries are evicted on :meth:`remove_instance` /
        :meth:`update_instance`, so a removed instance raises the
        lake's ``KeyError`` and an updated one serializes fresh."""
        with self._payload_lock:
            payload = self._payload_cache.get(instance_id)
            if payload is not None:
                self.payload_cache_hits += 1
                self._payload_cache.move_to_end(instance_id)
        if payload is not None:
            self._metrics.counter("indexer.payload_cache.hits").inc()
            return payload
        payload = serialize_instance(self.lake.instance(instance_id))
        with self._payload_lock:
            self.payload_cache_misses += 1
            self._payload_cache[instance_id] = payload
            self._payload_cache.move_to_end(instance_id)
            _sanitizer.note_write(
                self, "_payload_cache", lock=self._payload_lock
            )
            while len(self._payload_cache) > self.config.payload_cache_size:
                self._payload_cache.popitem(last=False)
            entries = len(self._payload_cache)
        self._metrics.counter("indexer.payload_cache.misses").inc()
        self._metrics.gauge("indexer.payload_cache.entries").set(entries)
        return payload
