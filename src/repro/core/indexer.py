"""The Indexer module: task-agnostic retrieval over the lake.

Per modality (tuples, tables, text files, KG entities) it maintains a
content-based BM25 index and, optionally, a semantic vector index; the
Combiner fuses their rankings.  All indexes speak instance ids, which
the lake resolves back to data instances.

Text documents may be indexed as sentence-aligned chunks
(``config.chunk_text``): retrieval then scores passages — long pages no
longer drown a single relevant sentence in length normalization — and
chunk hits are folded back to their parent documents.

The module supports incremental updates: instances added to the lake
after :meth:`build` can be folded in with :meth:`add_instance` without
rebuilding.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, List, Optional

from repro.datalake.lake import DataLake
from repro.datalake.serialize import serialize_instance
from repro.datalake.types import DataInstance, Modality, Table, TextDocument
from repro.embed.chunker import chunk_document
from repro.embed.vectorizers import HashingVectorizer
from repro.index.base import SearchHit
from repro.index.combiner import Combiner, FusionMethod
from repro.index.inverted import InvertedIndex
from repro.index.vector import FlatVectorIndex
from repro.core.config import VerifAIConfig
from repro.obs.metrics import get_registry

_INDEXED_MODALITIES = (
    Modality.TUPLE,
    Modality.TABLE,
    Modality.TEXT,
    Modality.KG_ENTITY,
)


def _fold_chunks_to_documents(hits: List[SearchHit], k: int) -> List[SearchHit]:
    """Collapse chunk hits (``doc#cN``) onto their parent documents,
    keeping each document's best chunk score.  Documents are re-ranked
    by ``(-score, instance_id)`` afterwards: a document whose best chunk
    appears late in the chunk ranking must not be stuck at the position
    of its first (weaker) chunk."""
    best: Dict[str, SearchHit] = {}
    for hit in hits:
        doc_id = hit.instance_id.split("#c", 1)[0]
        current = best.get(doc_id)
        if current is None or hit.score > current.score:
            best[doc_id] = SearchHit(hit.score, doc_id, hit.index_name)
    return sorted(
        best.values(), key=lambda hit: (-hit.score, hit.instance_id)
    )[:k]


class IndexerModule:
    """Per-modality content + semantic indexes with a Combiner on top."""

    def __init__(self, lake: DataLake, config: Optional[VerifAIConfig] = None) -> None:
        self.lake = lake
        self.config = config or VerifAIConfig()
        self._content: Dict[Modality, InvertedIndex] = {}
        self._semantic: Dict[Modality, FlatVectorIndex] = {}
        self._combiners: Dict[Modality, Combiner] = {}
        self._vectorizer = HashingVectorizer(dim=self.config.embedding_dim)
        self._built = False
        # guards the lazy build: search()/verify paths may race to build
        # from the batch engine's worker threads
        self._build_lock = threading.Lock()
        # serialized payloads are immutable once an instance is in the
        # lake, so rerankers can share one serialization per instance
        # instead of re-serializing it for every query
        self._payload_cache: "OrderedDict[str, str]" = OrderedDict()
        self._payload_lock = threading.Lock()
        self.payload_cache_hits = 0
        self.payload_cache_misses = 0
        self._metrics = get_registry()

    @property
    def is_built(self) -> bool:
        return self._built

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def _payload_entries(self, instance: DataInstance):
        """(index id, payload) entries for one instance — one per chunk
        for text documents when chunking is on."""
        if (
            self.config.chunk_text
            and isinstance(instance, TextDocument)
        ):
            chunks = chunk_document(
                instance, max_tokens=self.config.chunk_max_tokens
            )
            if chunks:
                return [(chunk.chunk_id, chunk.text) for chunk in chunks]
        return [(instance.instance_id, serialize_instance(instance))]

    def _add_to_indexes(self, modality: Modality, instance: DataInstance) -> None:
        content = self._content[modality]
        semantic = self._semantic.get(modality)
        for index_id, payload in self._payload_entries(instance):
            content.add(index_id, payload)
            if semantic is not None:
                semantic.add(index_id, payload)

    def _iter_modality(self, modality: Modality):
        if modality is Modality.KG_ENTITY:
            return self.lake.kg.entities()
        return self.lake.iter_instances(modality)

    def build(self) -> "IndexerModule":
        """Index every instance of every modality (idempotent, and safe
        to race: the first caller builds under the lock, later callers
        see the completed indexes)."""
        if self._built:
            return self
        with self._build_lock:
            if self._built:
                return self
            self._build_locked()
        return self

    def _build_locked(self) -> None:
        for modality in _INDEXED_MODALITIES:
            content = InvertedIndex(name=f"bm25-{modality.value}")
            self._content[modality] = content
            if self.config.use_semantic_index:
                self._semantic[modality] = FlatVectorIndex(
                    dim=self.config.embedding_dim,
                    encoder=self._vectorizer.transform,
                    name=f"vec-{modality.value}",
                )
            if modality is Modality.KG_ENTITY:
                for entity in self.lake.kg.entities():
                    content.add(entity.instance_id, entity.serialize())
                    semantic = self._semantic.get(modality)
                    if semantic is not None:
                        semantic.add(entity.instance_id, entity.serialize())
            else:
                for instance in self.lake.iter_instances(modality):
                    self._add_to_indexes(modality, instance)
            indexes = [content]
            if modality in self._semantic:
                indexes.append(self._semantic[modality])
            self._combiners[modality] = Combiner(
                indexes,
                method=self.config.fusion,
                name=f"combined-{modality.value}",
            )
        self.seal_indexes()
        self._built = True

    # ------------------------------------------------------------------
    # incremental updates
    # ------------------------------------------------------------------
    def add_instance(self, instance: DataInstance) -> None:
        """Fold a newly added lake instance into the live indexes.

        Tables also index each of their tuples (matching :meth:`build`'s
        coverage).  The instance must already be registered in the lake.
        """
        if not self._built:
            self.build()
            return
        if isinstance(instance, Table):
            self._add_to_indexes(Modality.TABLE, instance)
            for row in instance.iter_rows():
                self._add_to_indexes(Modality.TUPLE, row)
        elif isinstance(instance, TextDocument):
            self._add_to_indexes(Modality.TEXT, instance)
        else:
            self._add_to_indexes(Modality.TUPLE, instance)

    # ------------------------------------------------------------------
    # search
    # ------------------------------------------------------------------
    def search(
        self, query: str, modality: Modality, k: Optional[int] = None
    ) -> List[SearchHit]:
        """Coarse top-k for one modality (content + semantic fused)."""
        if not self._built:
            self.build()
        self._metrics.counter(f"indexer.search.{modality.value}").inc()
        depth = k if k is not None else self.config.k_coarse
        if modality is Modality.TEXT and self.config.chunk_text:
            raw = self._combiners[modality].search(query, depth * 3)
            return _fold_chunks_to_documents(raw, depth)
        return self._combiners[modality].search(query, depth)

    def content_index(self, modality: Modality) -> InvertedIndex:
        """Direct access to one modality's BM25 index (for ablations)."""
        if not self._built:
            self.build()
        return self._content[modality]

    def semantic_index(self, modality: Modality) -> Optional[FlatVectorIndex]:
        """Direct access to one modality's vector index, if enabled."""
        if not self._built:
            self.build()
        return self._semantic.get(modality)

    def seal_indexes(self) -> "IndexerModule":
        """Compile every content index's vectorized read form up front
        (otherwise sealing happens lazily on first search)."""
        for index in self._content.values():
            if index.auto_seal:
                index.seal()
        return self

    def fetch_payload(self, instance_id: str) -> str:
        """Serialized payload of any indexed instance, LRU-cached."""
        with self._payload_lock:
            payload = self._payload_cache.get(instance_id)
            if payload is not None:
                self.payload_cache_hits += 1
                self._payload_cache.move_to_end(instance_id)
        if payload is not None:
            self._metrics.counter("indexer.payload_cache.hits").inc()
            return payload
        payload = serialize_instance(self.lake.instance(instance_id))
        with self._payload_lock:
            self.payload_cache_misses += 1
            self._payload_cache[instance_id] = payload
            self._payload_cache.move_to_end(instance_id)
            while len(self._payload_cache) > self.config.payload_cache_size:
                self._payload_cache.popitem(last=False)
            entries = len(self._payload_cache)
        self._metrics.counter("indexer.payload_cache.misses").inc()
        self._metrics.gauge("indexer.payload_cache.entries").set(entries)
        return payload
