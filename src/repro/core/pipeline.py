"""The end-to-end VerifAI pipeline.

``VerifAI.verify(obj)`` runs Indexer -> Combiner -> Reranker -> Verifier
over the lake and returns a :class:`VerificationReport`: per-evidence
ternary verdicts, a pooled final verdict, and the provenance record id
for replay/debugging.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import VerifAIConfig
from repro.core.indexer import IndexerModule
from repro.core.reranker import RerankerModule
from repro.core.verifier import VerifierModule
from repro.datalake.lake import DataLake
from repro.datalake.types import DataInstance, Modality
from repro.index.base import SearchHit
from repro.llm.model import SimulatedLLM
from repro.obs.clock import Clock, MonotonicClock, ThreadCpuClock
from repro.obs.metrics import get_registry
from repro.obs.trace import NULL_BRANCH, Trace, Tracer
from repro.provenance.generation import GenerationLog
from repro.provenance.store import ProvenanceStore
from repro.verify.agent import VerifierAgent
from repro.verify.base import VerificationOutcome, Verifier
from repro.verify.llm_verifier import LLMVerifier
from repro.verify.objects import ClaimObject, DataObject, TupleObject
from repro.verify.verdict import Verdict

#: default evidence modalities per object type (the paper's Section 4
#: pairings: tuples are checked against tuples + text files, textual
#: claims against tables)
DEFAULT_MODALITIES = {
    TupleObject: (Modality.TUPLE, Modality.TEXT),
    ClaimObject: (Modality.TABLE,),
}

#: report statuses: the pipeline ran to completion vs. the per-object
#: error boundary caught a fault (see ``VerificationReport.status``)
STATUS_OK = "OK"
STATUS_FAILED = "FAILED"


def format_error(exc: BaseException) -> str:
    """The one-line error string reports and records carry for a fault."""
    return f"{type(exc).__name__}: {exc}"


def safe_query_text(obj: DataObject) -> str:
    """``obj.query_text()``, or "" when the object is too broken to ask.

    Provenance records need *a* query string even for objects whose
    ``query_text()`` raises; the real exception is re-raised (and
    reported) by the error boundary around the pipeline itself.
    """
    try:
        return obj.query_text()
    except Exception:
        return ""


@dataclass
class VerificationReport:
    """Everything VerifAI concluded about one data object.

    ``status`` is ``"OK"`` when the pipeline ran to completion and
    ``"FAILED"`` when the per-object error boundary caught a fault; a
    failed report carries the error string in ``error`` and pins
    ``final_verdict`` to NOT_RELATED (a failed verification asserts
    nothing about the object).
    """

    object_id: str
    final_verdict: Verdict
    margin: float
    outcomes: List[VerificationOutcome] = field(default_factory=list)
    evidence_ids: List[str] = field(default_factory=list)
    record_id: str = ""
    status: str = STATUS_OK
    error: str = ""
    #: span tree of the run when ``verify(..., trace=True)`` was asked
    #: for (a :class:`repro.obs.trace.Trace`), else ``None``
    trace: Optional[Trace] = None

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def supporting(self) -> List[VerificationOutcome]:
        return [o for o in self.outcomes if o.verdict is Verdict.VERIFIED]

    @property
    def refuting(self) -> List[VerificationOutcome]:
        return [o for o in self.outcomes if o.verdict is Verdict.REFUTED]

    def summary(self) -> str:
        """One-line human-readable summary."""
        if self.status == STATUS_FAILED:
            return f"{self.object_id}: FAILED ({self.error})"
        return (
            f"{self.object_id}: {self.final_verdict} "
            f"(margin {self.margin:.2f}; {len(self.supporting)} supporting, "
            f"{len(self.refuting)} refuting, "
            f"{len(self.outcomes) - len(self.supporting) - len(self.refuting)} "
            f"unrelated)"
        )


class VerifAI:
    """Verified generative AI over a multi-modal data lake."""

    def __init__(
        self,
        lake: DataLake,
        llm: Optional[SimulatedLLM] = None,
        config: Optional[VerifAIConfig] = None,
        local_verifiers: Sequence[Verifier] = (),
        source_trust: Optional[Dict[str, float]] = None,
        clock: Optional[Clock] = None,
        cpu_clock: Optional[Clock] = None,
    ) -> None:
        self.lake = lake
        self.config = config or VerifAIConfig()
        # the one time source for spans and stage timings; tests inject a
        # TickClock so exported traces are byte-stable
        self.clock: Clock = clock or MonotonicClock()
        # CPU-time source for profiled runs only (verify_batch
        # profile=True); deterministic tests inject a TickClock here too
        self.cpu_clock: Clock = cpu_clock or ThreadCpuClock()
        self.metrics = get_registry()
        self._trace_counter = 0
        self._trace_lock = threading.Lock()
        # the verifier LLM needs no parametric knowledge: it reasons over
        # the evidence in the prompt
        self.llm = llm or SimulatedLLM(knowledge=None)
        self.indexer = IndexerModule(lake, self.config, clock=self.clock)
        self.reranker = RerankerModule()
        agent = VerifierAgent(
            local_verifiers=local_verifiers,
            fallback=LLMVerifier(self.llm),
            prefer_local=self.config.prefer_local,
        )
        self.verifier = VerifierModule(
            agent, lake, source_trust,
            cache_size=self.config.verifier_cache_size,
        )
        self.provenance = ProvenanceStore()
        self.generation_log = GenerationLog()

    # ------------------------------------------------------------------
    # pipeline stages
    # ------------------------------------------------------------------
    def build_indexes(self) -> "VerifAI":
        """Build all lake indexes up front (otherwise lazy on first use)."""
        self.indexer.build()
        return self

    def next_trace_id(self) -> str:
        """Sequential trace id — deterministic, unlike uuid4, so traced
        runs replay byte-identically."""
        with self._trace_lock:
            self._trace_counter += 1
            count = self._trace_counter
        return f"trace-{count:06d}"

    def retrieval_stages(
        self,
        obj: DataObject,
        modality: Modality,
        k_coarse: Optional[int] = None,
        k_fine: Optional[int] = None,
        branch=None,
        parent=None,
    ) -> List[Tuple[str, List[SearchHit]]]:
        """Coarse retrieval + optional reranking, as named provenance
        stages.  The last stage's hits are the evidence shortlist.

        Results depend only on the object's query text, type, and the
        depths — which is what lets the batch engine dedupe identical
        retrievals across objects.  A tracing ``branch`` (plus ``parent``
        span) emits one span per stage."""
        if branch is None:
            branch = NULL_BRANCH
        query = obj.query_text()
        fine = k_fine if k_fine is not None else self.config.fine_k(modality)

        def retrieve_attrs(k: int) -> Dict[str, object]:
            attrs: Dict[str, object] = {"modality": modality.value, "k": k}
            # only stamp the fan-out when sharding is on, so traces of
            # default-config runs stay byte-identical to earlier builds
            if self.config.num_shards > 1:
                attrs["shards"] = self.config.num_shards
            return attrs

        if self.config.use_reranker:
            coarse_k = (
                k_coarse if k_coarse is not None else self.config.k_coarse
            )
            with branch.span(
                f"retrieve:coarse:{modality.value}",
                parent=parent,
                attributes=retrieve_attrs(coarse_k),
            ) as span:
                coarse = self.indexer.search(query, modality, k_coarse)
                span.set("hits", len(coarse))
            with branch.span(
                f"rerank:{modality.value}",
                parent=parent,
                attributes={"modality": modality.value, "k": fine},
            ) as span:
                shortlist = self.reranker.rerank(
                    obj, modality, coarse, self.indexer.fetch_payload, fine
                )
                span.set("hits", len(shortlist))
            return [
                (f"coarse:{modality.value}", coarse),
                (f"rerank:{modality.value}", shortlist),
            ]
        with branch.span(
            f"retrieve:coarse:{modality.value}",
            parent=parent,
            attributes=retrieve_attrs(fine),
        ) as span:
            hits = self.indexer.search(query, modality, fine)
            span.set("hits", len(hits))
        return [(f"coarse:{modality.value}", hits)]

    def retrieval_stages_batch(
        self,
        objs: Sequence[DataObject],
        modality: Modality,
        k_coarse: Optional[int] = None,
        k_fine: Optional[int] = None,
    ) -> List[List[Tuple[str, List[SearchHit]]]]:
        """Stage lists for many objects' retrievals against one
        modality, scored as **one query-matrix pass** per index instead
        of a per-object loop.

        Returns one stage list per object, hit-for-hit identical to
        ``[self.retrieval_stages(obj, modality, ...) for obj in objs]``
        (the matrix kernel is differential-tested against the per-query
        path).  Emits no spans — the batch engine replays spans from
        the stage lists, so traces never depend on which path filled
        the retrieval cache.  Reranking stays per-object (it is object-
        specific by design), but it consumes the batched coarse lists.
        """
        objs = list(objs)
        if not objs:
            return []
        queries = [obj.query_text() for obj in objs]
        fine = k_fine if k_fine is not None else self.config.fine_k(modality)
        if self.config.use_reranker:
            coarse_lists = self.indexer.search_batch(
                queries, modality, k_coarse
            )
            stage_lists = []
            for obj, coarse in zip(objs, coarse_lists):
                shortlist = self.reranker.rerank(
                    obj, modality, coarse, self.indexer.fetch_payload, fine
                )
                stage_lists.append([
                    (f"coarse:{modality.value}", coarse),
                    (f"rerank:{modality.value}", shortlist),
                ])
            return stage_lists
        hit_lists = self.indexer.search_batch(queries, modality, fine)
        return [
            [(f"coarse:{modality.value}", hits)] for hits in hit_lists
        ]

    def retrieve(
        self,
        obj: DataObject,
        modality: Modality,
        k_coarse: Optional[int] = None,
        k_fine: Optional[int] = None,
        record=None,
    ) -> List[SearchHit]:
        """Coarse retrieval + optional task-specific reranking."""
        stages = self.retrieval_stages(obj, modality, k_coarse, k_fine)
        if record is not None:
            for stage_name, hits in stages:
                record.add_stage(stage_name, hits)
        return stages[-1][1]

    def resolve(self, hits: Sequence[SearchHit]) -> List[DataInstance]:
        """Instance ids back to lake instances."""
        return [self.lake.instance(hit.instance_id) for hit in hits]

    # ------------------------------------------------------------------
    # end-to-end
    # ------------------------------------------------------------------
    def verify(
        self,
        obj: DataObject,
        modalities: Optional[Sequence[Modality]] = None,
        k_coarse: Optional[int] = None,
        k_fine: Optional[int] = None,
        fail_fast: bool = False,
        trace: bool = False,
    ) -> VerificationReport:
        """Discover evidence for ``obj`` across modalities and verify it.

        Runs inside the same per-object error boundary as the batch
        engine: a fault anywhere in retrieve/rerank/verify finalizes the
        provenance record with the failure and returns a ``FAILED``
        report instead of raising.  ``fail_fast=True`` restores
        raise-on-error (the record is still finalized first, so no
        dangling lineage either way).

        ``trace=True`` records a span tree of the run (root ``verify``
        span, one span per retrieval stage, a ``verify_pool`` span with
        per-evidence ``verdict`` children) on ``report.trace``, and
        cross-links it with the provenance record: the root span carries
        ``record_id`` and the record carries the trace id.
        """
        if modalities is None:
            modalities = DEFAULT_MODALITIES.get(type(obj), (Modality.TABLE,))
        record = self.provenance.new_record(
            obj.object_id, safe_query_text(obj)
        )
        tracer: Optional[Tracer] = None
        branch = NULL_BRANCH
        if trace:
            tracer = Tracer(self.next_trace_id(), clock=self.clock)
            record.trace_id = tracer.trace_id
            branch = tracer.branch()
        self.metrics.counter("pipeline.verify_calls").inc()
        start = self.clock.now()
        try:
            with branch.span(
                "verify",
                attributes={"object_id": obj.object_id},
                record_id=record.record_id,
            ) as root:
                evidence: List[DataInstance] = []
                for modality in modalities:
                    stages = self.retrieval_stages(
                        obj, modality, k_coarse, k_fine,
                        branch=branch, parent=root,
                    )
                    for stage_name, hits in stages:
                        record.add_stage(stage_name, hits)
                    evidence.extend(self.resolve(stages[-1][1]))
                retrieve_end = self.clock.now()
                with branch.span(
                    "verify_pool",
                    parent=root,
                    attributes={"evidence": len(evidence)},
                ) as pool_span:
                    outcomes, final, margin = self.verifier.verify_pool(
                        obj, evidence, branch=branch, parent=pool_span
                    )
                    pool_span.set("verdict", final.name)
                root.set("verdict", final.name)
        except Exception as exc:
            # serial verify never retries, so the failed attempt's spans
            # are the trace: commit them (each marked FAILED on unwind)
            branch.commit()
            record.mark_failed(format_error(exc))
            self.generation_log.link_verification(
                obj.object_id, record.record_id
            )
            self.metrics.counter("pipeline.verify_failed").inc()
            if fail_fast:
                raise
            return VerificationReport(
                object_id=obj.object_id,
                final_verdict=Verdict.NOT_RELATED,
                margin=0.0,
                record_id=record.record_id,
                status=STATUS_FAILED,
                error=record.error,
                trace=tracer.trace() if tracer is not None else None,
            )
        branch.commit()
        verify_end = self.clock.now()
        self.metrics.histogram("pipeline.retrieve_seconds").observe(
            retrieve_end - start
        )
        self.metrics.histogram("pipeline.verify_seconds").observe(
            verify_end - retrieve_end
        )
        record.record_outcomes(outcomes)
        record.finalize(final, margin)
        self.generation_log.link_verification(obj.object_id, record.record_id)
        return VerificationReport(
            object_id=obj.object_id,
            final_verdict=final,
            margin=margin,
            outcomes=outcomes,
            evidence_ids=[o.evidence_id for o in outcomes],
            record_id=record.record_id,
            trace=tracer.trace() if tracer is not None else None,
        )

    def verify_batch(
        self,
        objects: Sequence[DataObject],
        modalities: Optional[Sequence[Modality]] = None,
        max_workers: Optional[int] = None,
        k_coarse: Optional[int] = None,
        k_fine: Optional[int] = None,
        fail_fast: bool = False,
        max_retries: Optional[int] = None,
        trace: bool = False,
        profile: bool = False,
    ) -> "BatchReport":
        """Verify many objects and summarize the campaign.

        Delegates to the batch engine: identical retrieval queries are
        computed once, retrieval+rerank+verify runs on up to
        ``max_workers`` threads (default ``config.batch_max_workers``,
        1 = the serial path), and report order always matches input
        order.  Each object runs inside an error boundary: a fault
        yields a ``FAILED`` report (after ``max_retries`` extra
        attempts, default ``config.batch_max_retries``) instead of
        aborting the campaign; ``fail_fast=True`` restores
        raise-on-first-error.  The returned :class:`BatchReport` carries
        stage timings, cache-hit, failure, and retry counters in
        ``stats``; ``trace=True`` additionally attaches a campaign-wide
        span tree (``report.trace``) whose export is byte-identical for
        serial and parallel runs under a deterministic clock.

        ``profile=True`` (implies tracing) additionally stamps every
        span with thread-CPU readings and attaches a
        :class:`repro.obs.profile.StageProfile` (``report.profile``)
        attributing the campaign's wall and CPU time to named stages.
        Profiling is strictly opt-in: the default path builds the exact
        trace bytes it always has.
        """
        from repro.core.batch import BatchEngine

        workers = (
            max_workers if max_workers is not None
            else self.config.batch_max_workers
        )
        engine = BatchEngine(
            self, max_workers=workers,
            fail_fast=fail_fast, max_retries=max_retries,
        )
        return engine.run(
            objects, modalities=modalities, k_coarse=k_coarse,
            k_fine=k_fine, trace=trace or profile, profile=profile,
        )

    def add_instance(self, instance) -> None:
        """Fold a newly ingested lake instance into the live indexes
        (incremental indexing; the instance must already be in the lake)."""
        self.indexer.add_instance(instance)

    def remove_instance(self, instance_id: str) -> DataInstance:
        """Remove a table or document from the lake AND the live indexes.

        The lake removal runs first (KeyError/ValueError surface before
        anything is unindexed); the removed instance is returned.  After
        this, retrieval never surfaces the instance and
        ``fetch_payload`` raises the lake's KeyError for it.
        """
        instance = self.lake.remove_instance(instance_id)
        self.indexer.remove_instance(instance)
        return instance

    def update_instance(self, instance: DataInstance) -> DataInstance:
        """Replace a table/document in the lake AND the live indexes;
        returns the old version.  Retrieval and payload fetches see the
        new content immediately (no rebuild)."""
        old = self.lake.update_instance(instance)
        self.indexer.update_instance(old, instance)
        return old

    def explain(self, report: VerificationReport) -> str:
        """Replay the full lineage of a verification (challenge C4)."""
        return self.provenance.explain(report.record_id)


@dataclass
class BatchReport:
    """Aggregate view of a verification campaign.

    ``stats`` (a :class:`repro.core.batch.BatchStats`) is attached by
    the batch engine: per-stage wall time plus retrieval/verifier/
    payload/analysis cache counters for the run.
    """

    reports: List[VerificationReport]
    stats: Optional["object"] = None
    #: campaign span tree when ``verify_batch(..., trace=True)`` was
    #: asked for (a :class:`repro.obs.trace.Trace`), else ``None``
    trace: Optional[Trace] = None
    #: per-stage wall/CPU self-time attribution when ``profile=True``
    #: (a :class:`repro.obs.profile.StageProfile`), else ``None``
    profile: Optional["object"] = None

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self):
        return iter(self.reports)

    def count(self, verdict: Verdict) -> int:
        return sum(1 for r in self.reports if r.final_verdict is verdict)

    @property
    def verified(self) -> int:
        return self.count(Verdict.VERIFIED)

    @property
    def refuted(self) -> int:
        return self.count(Verdict.REFUTED)

    @property
    def unresolved(self) -> int:
        return self.count(Verdict.NOT_RELATED)

    @property
    def failed(self) -> int:
        """Objects whose pipeline faulted (status FAILED).  These also
        count as ``unresolved`` — a failed verification pins its verdict
        to NOT_RELATED."""
        return sum(1 for r in self.reports if r.status == STATUS_FAILED)

    @property
    def failures(self) -> List[VerificationReport]:
        """The FAILED reports, in input order."""
        return [r for r in self.reports if r.status == STATUS_FAILED]

    def summary(self) -> str:
        """One-line campaign summary (plus cache stats when present)."""
        line = (
            f"{len(self.reports)} objects: {self.verified} verified, "
            f"{self.refuted} refuted, {self.unresolved} unresolved"
        )
        if self.failed:
            line += f" ({self.failed} FAILED)"
        if self.stats is not None:
            line += (
                f"; {self.stats.failed} failed, "
                f"{self.stats.retries} retries"
            )
            line += (
                f"; verifier cache: {self.stats.verifier_cache_hits} hits, "
                f"{self.stats.verifier_cache_entries}/"
                f"{self.stats.verifier_cache_size} entries"
            )
        return line
