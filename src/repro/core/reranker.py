"""The Reranker module: task-specific rerouting of coarse hits.

Routing follows Section 3.2: (text, text) pairs go to the ColBERT-style
late-interaction scorer, (text, table) to the OpenTFV-style scorer, and
(tuple, tuple) to the tuple-pair scorer; anything else falls back to the
generic feature mixture.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.datalake.types import Modality
from repro.index.base import SearchHit
from repro.obs.metrics import get_registry
from repro.rerank.base import Reranker
from repro.rerank.colbert import LateInteractionReranker
from repro.rerank.features import FeatureReranker
from repro.rerank.table import TableReranker
from repro.rerank.tuples import TupleReranker
from repro.verify.objects import ClaimObject, DataObject, TupleObject


class RerankerModule:
    """Route (object type, evidence modality) to the right reranker."""

    def __init__(
        self,
        text_text: Optional[Reranker] = None,
        text_table: Optional[Reranker] = None,
        tuple_tuple: Optional[Reranker] = None,
        fallback: Optional[Reranker] = None,
    ) -> None:
        self.text_text = text_text or LateInteractionReranker()
        self.text_table = text_table or TableReranker()
        self.tuple_tuple = tuple_tuple or TupleReranker()
        self.fallback = fallback or FeatureReranker()

    def route(self, obj: DataObject, modality: Modality) -> Reranker:
        """The reranker for this pair type."""
        if isinstance(obj, ClaimObject) and modality is Modality.TABLE:
            return self.text_table
        if isinstance(obj, ClaimObject) and modality is Modality.TEXT:
            return self.text_text
        if isinstance(obj, TupleObject) and modality is Modality.TUPLE:
            return self.tuple_tuple
        if isinstance(obj, TupleObject) and modality is Modality.TEXT:
            return self.text_text
        return self.fallback

    def rerank(
        self,
        obj: DataObject,
        modality: Modality,
        candidates: Sequence[SearchHit],
        fetch: Callable[[str], str],
        k: int,
    ) -> List[SearchHit]:
        """Re-score coarse candidates down to the fine shortlist."""
        reranker = self.route(obj, modality)
        metrics = get_registry()
        metrics.counter("reranker.calls").inc()
        metrics.histogram(
            "reranker.candidates",
            buckets=(1, 2, 5, 10, 20, 50, 100, 200, 500),
        ).observe(len(candidates))
        return reranker.rerank(obj.query_text(), candidates, fetch, k)
