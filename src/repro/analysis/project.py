"""The whole-program project model behind the interprocedural rules.

The per-file rule engine (:mod:`repro.analysis.linter`) sees one AST at
a time; lock-order cycles, cross-call determinism taint, and
escaped-to-a-thread-pool state are invisible to it.  This module builds
the shared substrate those analyses need:

* a **module table** — every ``.py`` file under the linted roots, keyed
  by its dotted module name, with the per-file :class:`LintContext`
  (pragmas, snippets) kept alongside so whole-program findings anchor
  and suppress exactly like per-file ones;
* a **symbol table** — every function, method, and class with a stable
  qualified name (``repro.core.indexer.IndexerModule.build``), plus
  nested functions and lambdas (thread-pool workers are usually one of
  the two);
* an **import map** per module — local alias -> dotted target — so call
  sites can be resolved across module boundaries.

Everything here is deterministic: tables are sorted, iteration never
touches hash order, and no wall-clock or absolute path leaks into any
derived structure (the JSON report must be byte-stable across runs).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.analysis.linter import (
    Finding,
    LintContext,
    Rule,
    _annotate_parents,
    _parse_pragmas,
)


@dataclass
class FunctionInfo:
    """One function, method, nested function, or lambda."""

    qualname: str            #: e.g. ``repro.core.indexer.IndexerModule.build``
    module: str              #: dotted module name
    name: str                #: unqualified name (``build``, ``<lambda:12>``)
    node: ast.AST            #: FunctionDef / AsyncFunctionDef / Lambda
    class_name: Optional[str] = None  #: owning class, if a method

    @property
    def is_method(self) -> bool:
        return self.class_name is not None

    def body_nodes(self) -> Iterator[ast.AST]:
        """Walk this function's own body, NOT descending into nested
        function/class definitions (those are separate symbols)."""
        defs = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                ast.ClassDef)
        if isinstance(self.node, ast.Lambda):
            roots: List[ast.AST] = [self.node.body]
        else:
            roots = [s for s in self.node.body if not isinstance(s, defs)]
        stack = list(roots)
        while stack:
            node = stack.pop()
            yield node
            for child in ast.iter_child_nodes(node):
                if isinstance(child, defs):
                    continue
                stack.append(child)

    def param_names(self) -> List[str]:
        args = self.node.args
        names = [a.arg for a in args.posonlyargs] if hasattr(
            args, "posonlyargs"
        ) else []
        names += [a.arg for a in args.args]
        if args.vararg:
            names.append(args.vararg.arg)
        names += [a.arg for a in args.kwonlyargs]
        if args.kwarg:
            names.append(args.kwarg.arg)
        return names


@dataclass
class ClassInfo:
    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)  #: raw dotted base names
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """One parsed source file plus its lint context."""

    name: str                #: dotted module name
    rel_path: str
    tree: ast.Module
    ctx: LintContext
    #: local alias -> dotted target (``shard_executor`` ->
    #: ``repro.index.executor``; ``save_sealed_index`` ->
    #: ``repro.index.persistence.save_sealed_index``)
    imports: Dict[str, str] = field(default_factory=dict)
    #: names defined at module top level (functions, classes, constants)
    top_level: Dict[str, str] = field(default_factory=dict)


def module_name_for(rel_path: str) -> str:
    """Dotted module name of a repo-relative path.

    ``src/repro/core/batch.py`` -> ``repro.core.batch``; package
    ``__init__.py`` files name the package itself.  Paths outside a
    ``src`` layout keep their own stem-based name so fixture files and
    standalone scripts still get unique identities.
    """
    parts = list(Path(rel_path).parts)
    if parts and parts[0] == "src":
        parts = parts[1:]
    if not parts:
        return rel_path
    leaf = parts[-1]
    if leaf.endswith(".py"):
        leaf = leaf[:-3]
    if leaf == "__init__":
        parts = parts[:-1]
    else:
        parts = parts[:-1] + [leaf]
    return ".".join(parts) if parts else leaf


def _collect_imports(tree: ast.Module, module_name: str) -> Dict[str, str]:
    package = module_name.rsplit(".", 1)[0] if "." in module_name else ""
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    imports[alias.asname] = alias.name
                else:
                    head = alias.name.split(".")[0]
                    imports[head] = head
        elif isinstance(node, ast.ImportFrom):
            base = node.module or ""
            if node.level:
                anchor = module_name.split(".")
                anchor = anchor[: len(anchor) - node.level]
                base = ".".join(anchor + ([base] if base else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                imports[local] = f"{base}.{alias.name}" if base else alias.name
    return imports


class Project:
    """The whole-program view: modules, classes, functions, methods."""

    def __init__(self, modules: Sequence[ModuleInfo]) -> None:
        self.modules: Dict[str, ModuleInfo] = {}
        for mod in sorted(modules, key=lambda m: m.name):
            self.modules[mod.name] = mod
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: dynamic-dispatch fallback table: method name -> defining methods
        self.methods_by_name: Dict[str, List[FunctionInfo]] = {}
        #: per-file raw findings (pre-pragma, pre-baseline), set by the
        #: linter before the whole-program phase so META001 can audit
        #: pragma liveness against what actually fired
        self.file_findings: Dict[str, List[Finding]] = {}
        for mod in self.modules.values():
            self._index_module(mod)
        for name in self.methods_by_name:
            self.methods_by_name[name].sort(key=lambda f: f.qualname)

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_sources(cls, sources: Dict[str, str]) -> "Project":
        """Build a project from ``{rel_path_or_dotted_name: source}``
        (unit-test entry point; mirrors what the linter does on disk)."""
        modules: List[ModuleInfo] = []
        for key in sorted(sources):
            source = sources[key]
            rel_path = key if key.endswith(".py") else (
                key.replace(".", "/") + ".py"
            )
            tree = ast.parse(source, filename=rel_path)
            _annotate_parents(tree)
            lines = source.splitlines()
            line_pragmas, file_pragmas = _parse_pragmas(lines)
            ctx = LintContext(
                path=Path(rel_path),
                rel_path=rel_path,
                source=source,
                tree=tree,
                lines=lines,
                line_pragmas=line_pragmas,
                file_pragmas=file_pragmas,
                is_benchmark="benchmarks" in Path(rel_path).parts,
            )
            modules.append(module_info(ctx))
        return cls(modules)

    def _index_module(self, mod: ModuleInfo) -> None:
        for stmt in mod.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._index_function(mod, stmt, prefix=mod.name)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(mod, stmt)

    def _index_class(self, mod: ModuleInfo, node: ast.ClassDef) -> None:
        qualname = f"{mod.name}.{node.name}"
        info = ClassInfo(
            qualname=qualname,
            module=mod.name,
            name=node.name,
            node=node,
            bases=[_base_name(b) for b in node.bases],
        )
        self.classes[qualname] = info
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = self._index_function(
                    mod, stmt, prefix=qualname, class_name=node.name
                )
                info.methods[stmt.name] = fn

    def _index_function(
        self,
        mod: ModuleInfo,
        node: ast.AST,
        prefix: str,
        class_name: Optional[str] = None,
    ) -> FunctionInfo:
        name = getattr(node, "name", None) or f"<lambda:{node.lineno}>"
        qualname = f"{prefix}.{name}"
        info = FunctionInfo(
            qualname=qualname,
            module=mod.name,
            name=name,
            node=node,
            class_name=class_name,
        )
        self.functions[qualname] = info
        if class_name is not None:
            self.methods_by_name.setdefault(name, []).append(info)
        # nested defs and lambdas become their own symbols (thread-pool
        # workers are usually one of the two)
        self._index_nested(mod, node, qualname)
        return info

    def _index_nested(
        self, mod: ModuleInfo, node: ast.AST, prefix: str
    ) -> None:
        roots = (
            [node.body] if isinstance(node, ast.Lambda) else list(node.body)
        )
        stack = list(roots)
        while stack:
            current = stack.pop()
            if isinstance(
                current, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)
            ):
                self._index_function(mod, current, prefix=prefix)
                continue
            if isinstance(current, ast.ClassDef):
                continue  # nested classes: out of scope
            stack.extend(ast.iter_child_nodes(current))

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def module_of(self, rel_path: str) -> Optional[ModuleInfo]:
        for mod in self.modules.values():
            if mod.rel_path == rel_path:
                return mod
        return None

    def resolve_class(
        self, mod: ModuleInfo, raw_name: str
    ) -> Optional[ClassInfo]:
        """Resolve a (possibly dotted, possibly aliased) class name as
        seen from ``mod``."""
        if not raw_name:
            return None
        head, _, rest = raw_name.partition(".")
        target = mod.imports.get(head)
        if target is not None:
            dotted = f"{target}.{rest}" if rest else target
        else:
            dotted = f"{mod.name}.{raw_name}"
        if dotted in self.classes:
            return self.classes[dotted]
        # ``from x import Cls`` maps the alias straight to the class
        if raw_name in mod.imports and mod.imports[raw_name] in self.classes:
            return self.classes[mod.imports[raw_name]]
        return None

    def resolve_method(
        self, cls: ClassInfo, method_name: str
    ) -> Optional[FunctionInfo]:
        """Method lookup through the project-visible base-class chain."""
        seen = set()
        queue = [cls]
        while queue:
            current = queue.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            if method_name in current.methods:
                return current.methods[method_name]
            mod = self.modules.get(current.module)
            if mod is None:
                continue
            for base in current.bases:
                base_cls = self.resolve_class(mod, base)
                if base_cls is not None:
                    queue.append(base_cls)
        return None

    def finding(
        self, rule: Rule, mod: ModuleInfo, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored in ``mod`` (whole-program rules
        anchor findings in whichever file holds the offending node)."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule_id=rule.rule_id,
            path=mod.rel_path,
            line=line,
            col=col,
            message=message,
            snippet=mod.ctx.line_text(line),
        )


def _base_name(node: ast.AST) -> str:
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return ""


def module_info(ctx: LintContext) -> ModuleInfo:
    """Lift one per-file lint context into the project model."""
    name = module_name_for(ctx.rel_path)
    tree = ctx.tree
    return ModuleInfo(
        name=name,
        rel_path=ctx.rel_path,
        tree=tree,
        ctx=ctx,
        imports=_collect_imports(tree, name),
        top_level=_top_level_names(tree, name),
    )


def _top_level_names(tree: ast.Module, module_name: str) -> Dict[str, str]:
    names: Dict[str, str] = {}
    for stmt in tree.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            names[stmt.name] = f"{module_name}.{stmt.name}"
        elif isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign)
                else [stmt.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    names[target.id] = f"{module_name}.{target.id}"
    return names
