"""Package-namespace re-export of the line-coverage tracer.

The implementation lives in the top-level :mod:`repro_coverage` module
(next to the ``repro`` package under ``src/``) because the pytest
plugin must be importable *without* triggering ``repro/__init__`` —
otherwise the measured modules would be imported before tracing starts
and their import-time lines could never be counted.  Library users
import from here; the ``repro coverage`` CLI and ``make coverage``
load the plugin as ``-p repro_coverage``.
"""

from repro_coverage import (
    COVERAGE_EXIT_STATUS,
    ENV_FLOOR,
    ENV_TARGETS,
    PRAGMA,
    CoverageReport,
    FileCoverage,
    LineTracer,
    executable_lines,
)

__all__ = [
    "COVERAGE_EXIT_STATUS",
    "CoverageReport",
    "ENV_FLOOR",
    "ENV_TARGETS",
    "FileCoverage",
    "LineTracer",
    "PRAGMA",
    "executable_lines",
]
