"""repro-lint: AST static analysis for the reproduction's invariants.

The test suite cannot see whether a code path is seeded-deterministic or
whether a verdict dispatch covers the full ternary space; this package
checks those invariants syntactically on every commit.  See
docs/static_analysis.md for the rule catalogue.
"""

from repro.analysis.baseline import Baseline, fingerprint
from repro.analysis.linter import (
    Finding,
    Linter,
    LintRun,
    ParseCache,
    ProjectRule,
    Rule,
    all_project_rules,
    all_rules,
    known_rule_ids,
    register,
    register_project,
)
from repro.analysis.report import render_json, render_text

__all__ = [
    "Baseline",
    "Finding",
    "LintRun",
    "Linter",
    "ParseCache",
    "ProjectRule",
    "Rule",
    "all_project_rules",
    "all_rules",
    "fingerprint",
    "known_rule_ids",
    "register",
    "register_project",
    "render_json",
    "render_text",
]
