"""repro-lint: AST static analysis for the reproduction's invariants.

The test suite cannot see whether a code path is seeded-deterministic or
whether a verdict dispatch covers the full ternary space; this package
checks those invariants syntactically on every commit.  See
docs/static_analysis.md for the rule catalogue.
"""

from repro.analysis.baseline import Baseline, fingerprint
from repro.analysis.linter import Finding, Linter, Rule, all_rules, register
from repro.analysis.report import render_json, render_text

__all__ = [
    "Baseline",
    "Finding",
    "Linter",
    "Rule",
    "all_rules",
    "fingerprint",
    "register",
    "render_json",
    "render_text",
]
