"""Finding reporters: human text and machine-readable JSON.

The text form prints clickable ``file:line:col`` locations grouped by
file; the JSON form is stable (sorted keys, sorted findings) so CI can
diff two runs byte-for-byte.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from repro.analysis.linter import Finding, Rule


def render_text(
    findings: Sequence[Finding], suppressed: int = 0
) -> str:
    """Human-readable report, one line per finding, grouped by file."""
    if not findings:
        tail = f" ({suppressed} baselined)" if suppressed else ""
        return f"repro-lint: clean{tail}"
    lines: List[str] = []
    current_path = None
    for finding in findings:
        if finding.path != current_path:
            current_path = finding.path
            lines.append(f"{finding.path}:")
        lines.append(
            f"  {finding.line}:{finding.col}  {finding.rule_id}  "
            f"{finding.message}"
        )
        if finding.snippet:
            lines.append(f"      | {finding.snippet}")
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
    summary = ", ".join(
        f"{rule} x{count}" for rule, count in sorted(by_rule.items())
    )
    tail = f"; {suppressed} baselined" if suppressed else ""
    lines.append(f"repro-lint: {len(findings)} finding(s) ({summary}){tail}")
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    rules: Sequence[Rule] = (),
    suppressed: int = 0,
) -> str:
    """Machine-readable report for CI diffing."""
    payload = {
        "version": 1,
        "count": len(findings),
        "suppressed": suppressed,
        "rules": [
            {
                "id": rule.rule_id,
                "name": rule.name,
                "category": rule.category,
            }
            for rule in rules
        ],
        "findings": [
            {
                "rule": finding.rule_id,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
                "snippet": finding.snippet,
            }
            for finding in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
