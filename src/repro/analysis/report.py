"""Finding reporters: human text and machine-readable JSON.

The text form prints clickable ``file:line:col`` locations grouped by
file; the JSON form is stable (sorted keys, sorted findings) so CI can
diff two runs byte-for-byte.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Sequence

from repro.analysis.linter import Finding, LintRun, Rule


def render_text(
    findings: Sequence[Finding], suppressed: int = 0
) -> str:
    """Human-readable report, one line per finding, grouped by file."""
    if not findings:
        tail = f" ({suppressed} baselined)" if suppressed else ""
        return f"repro-lint: clean{tail}"
    lines: List[str] = []
    current_path = None
    for finding in findings:
        if finding.path != current_path:
            current_path = finding.path
            lines.append(f"{finding.path}:")
        lines.append(
            f"  {finding.line}:{finding.col}  {finding.rule_id}  "
            f"{finding.message}"
        )
        if finding.snippet:
            lines.append(f"      | {finding.snippet}")
    by_rule: Dict[str, int] = {}
    for finding in findings:
        by_rule[finding.rule_id] = by_rule.get(finding.rule_id, 0) + 1
    summary = ", ".join(
        f"{rule} x{count}" for rule, count in sorted(by_rule.items())
    )
    tail = f"; {suppressed} baselined" if suppressed else ""
    lines.append(f"repro-lint: {len(findings)} finding(s) ({summary}){tail}")
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding],
    rules: Sequence[Rule] = (),
    suppressed: int = 0,
    run: Optional[LintRun] = None,
) -> str:
    """Machine-readable report for CI diffing.

    Byte-stable by construction: sorted keys, sorted findings, no
    wall-clock and no absolute paths.  The ``cache`` block reports the
    parse cache's hit/miss counters when a :class:`LintRun` is given;
    with the cache disabled (the CI default) it is all zeros, so two
    consecutive runs stay byte-identical.
    """
    payload = {
        "version": 2,
        "count": len(findings),
        "suppressed": suppressed,
        "cache": {
            "enabled": run is not None and (run.cache_hits + run.cache_misses) > 0,
            "hits": run.cache_hits if run is not None else 0,
            "misses": run.cache_misses if run is not None else 0,
        },
        "files": run.files if run is not None else 0,
        "rules": [
            {
                "id": rule.rule_id,
                "name": rule.name,
                "category": rule.category,
            }
            for rule in rules
        ],
        "findings": [
            {
                "rule": finding.rule_id,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
                "snippet": finding.snippet,
            }
            for finding in findings
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)
