"""The repro-lint rule engine.

Linting runs in **two phases**:

1. *per-file* — a single-pass AST walker with a rule registry: each
   :class:`Rule` declares the node types it wants to see, the engine
   parses every file once and dispatches nodes to interested rules;
2. *whole-program* — the per-file contexts are lifted into a
   :class:`~repro.analysis.project.Project` (module + symbol tables, a
   conservative call graph) and every registered :class:`ProjectRule`
   runs once over it.  This is where the interprocedural families live:
   lock-order cycles (IPC), cross-call determinism taint (IPD), escape
   analysis for pool-shared state (IPE), and the stale-pragma audit
   (META001), which needs both phases' raw findings to decide whether a
   suppression still suppresses anything.

Findings from both phases are filtered through inline ``# repro-lint:
disable=RULE`` pragmas before being returned.  An mtime-keyed
:class:`ParseCache` can skip phase 1 for unchanged files (the
whole-program phase always runs fresh — it is cross-file by nature).

The rules themselves live in :mod:`repro.analysis.rules` and encode the
reproduction's two load-bearing invariants (see docs/static_analysis.md):
every code path must be seeded-deterministic, and every verifier must
stay inside the closed ternary ``Verdict`` space — plus the concurrency
discipline the batched engine introduced in PR 1.
"""

from __future__ import annotations

import ast
import pickle
import re
from dataclasses import dataclass, field
from hashlib import blake2b
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type

#: bumped whenever rule semantics or the cache payload shape changes;
#: part of the cache signature so stale caches self-invalidate
ENGINE_VERSION = 2

#: matches trailing ``disable=DET001`` / ``disable-file=DET001,CTR003``
#: suppression comments (introduced by a hash and the tool name)
_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_,\s]+)"
)

#: directory / file names never linted
_SKIP_PARTS = {"__pycache__", ".git", ".pytest_cache"}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id``/``name``/``category``/``description`` and
    the AST ``node_types`` they inspect, then implement :meth:`visit`.
    """

    rule_id: str = ""
    name: str = ""
    category: str = ""
    description: str = ""
    node_types: Tuple[type, ...] = ()

    def visit(self, node: ast.AST, ctx: "LintContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: "LintContext", node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule_id=self.rule_id,
            path=ctx.rel_path,
            line=line,
            col=col,
            message=message,
            snippet=ctx.line_text(line),
        )


class ProjectRule(Rule):
    """Base class for whole-program rules.

    Runs once per lint invocation over the assembled
    :class:`~repro.analysis.project.Project` instead of per AST node;
    findings anchor in whichever file holds the offending node, so
    pragmas and the baseline apply exactly as for per-file rules.
    """

    node_types: Tuple[type, ...] = (ast.Module,)  # satisfies Rule contract

    def visit(self, node: ast.AST, ctx: "LintContext") -> Iterator[Finding]:
        return iter(())  # project rules do not run in the per-file phase

    def visit_project(self, project) -> Iterator[Finding]:
        raise NotImplementedError


_RULE_REGISTRY: List[Type[Rule]] = []
_PROJECT_RULE_REGISTRY: List[Type[ProjectRule]] = []


def _check_new_rule(cls: Type[Rule]) -> None:
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    taken = [c.rule_id for c in _RULE_REGISTRY]
    taken += [c.rule_id for c in _PROJECT_RULE_REGISTRY]
    if cls.rule_id in taken:
        raise ValueError(f"duplicate rule id {cls.rule_id}")


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a per-file rule to the global registry."""
    _check_new_rule(cls)
    _RULE_REGISTRY.append(cls)
    return cls


def register_project(cls: Type[ProjectRule]) -> Type[ProjectRule]:
    """Class decorator adding a whole-program rule to the registry."""
    _check_new_rule(cls)
    _PROJECT_RULE_REGISTRY.append(cls)
    return cls


def all_rules() -> List[Rule]:
    """One fresh instance of every registered per-file rule, id-sorted."""
    # importing the package populates the registry
    from repro.analysis import rules as _rules  # noqa: F401

    return [cls() for cls in sorted(_RULE_REGISTRY, key=lambda c: c.rule_id)]


def all_project_rules() -> List[ProjectRule]:
    """One fresh instance of every whole-program rule, id-sorted."""
    from repro.analysis import rules as _rules  # noqa: F401

    return [
        cls() for cls in sorted(_PROJECT_RULE_REGISTRY, key=lambda c: c.rule_id)
    ]


def known_rule_ids() -> List[str]:
    """Every registered rule id (both phases) plus the engine's own
    ``E001`` syntax marker — the universe META001 validates pragmas
    against."""
    ids = {cls.rule_id for cls in _RULE_REGISTRY}
    ids |= {cls.rule_id for cls in _PROJECT_RULE_REGISTRY}
    ids.add("E001")
    return sorted(ids)


@dataclass
class LintContext:
    """Everything a rule may ask about the file being linted."""

    path: Path
    rel_path: str
    source: str
    tree: ast.AST
    lines: List[str] = field(default_factory=list)
    #: line number -> set of rule ids disabled on that line
    line_pragmas: Dict[int, set] = field(default_factory=dict)
    #: rule ids disabled for the whole file
    file_pragmas: set = field(default_factory=set)
    is_benchmark: bool = False

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return getattr(node, "_repro_parent", None)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def suppressed(self, finding: Finding) -> bool:
        if finding.rule_id in self.file_pragmas:
            return True
        return finding.rule_id in self.line_pragmas.get(finding.line, set())


def _parse_pragmas(lines: Sequence[str]) -> Tuple[Dict[int, set], set]:
    line_pragmas: Dict[int, set] = {}
    file_pragmas: set = set()
    for number, text in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        kind, raw_ids = match.groups()
        ids = {part.strip().upper() for part in raw_ids.split(",") if part.strip()}
        if kind == "disable-file":
            file_pragmas |= ids
        else:
            line_pragmas.setdefault(number, set()).update(ids)
    return line_pragmas, file_pragmas


def _annotate_parents(tree: ast.AST) -> None:
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._repro_parent = parent  # type: ignore[attr-defined]


class ParseCache:
    """An mtime-keyed cache of phase-1 results.

    Keyed by ``(mtime_ns, size, rules signature)`` per file; a hit skips
    parsing-and-dispatching that file's per-file rules and replays the
    cached raw findings + pragma tables.  The whole-program phase still
    re-parses hit files (it needs every AST fresh), which is cheap —
    rule dispatch, not parsing, dominates a cold run.
    """

    def __init__(self, path: Path, signature: str) -> None:
        self.path = Path(path)
        self.signature = signature
        self.hits = 0
        self.misses = 0
        self._entries: Dict[str, dict] = {}
        self._dirty = False
        if self.path.is_file():
            try:
                with self.path.open("rb") as handle:
                    payload = pickle.load(handle)
                if payload.get("signature") == signature:
                    self._entries = payload.get("entries", {})
            except Exception:
                self._entries = {}  # a corrupt cache is just a cold cache

    def get(self, rel_path: str, file_path: Path) -> Optional[tuple]:
        entry = self._entries.get(rel_path)
        if entry is None:
            self.misses += 1
            return None
        stat = file_path.stat()
        if entry["mtime_ns"] != stat.st_mtime_ns or entry["size"] != stat.st_size:
            self.misses += 1
            return None
        self.hits += 1
        return entry["payload"]

    def put(self, rel_path: str, file_path: Path, payload: tuple) -> None:
        stat = file_path.stat()
        self._entries[rel_path] = {
            "mtime_ns": stat.st_mtime_ns,
            "size": stat.st_size,
            "payload": payload,
        }
        self._dirty = True

    def save(self) -> None:
        if not self._dirty:
            return
        blob = pickle.dumps(
            {"signature": self.signature, "entries": self._entries}
        )
        self.path.write_bytes(blob)
        self._dirty = False


@dataclass
class LintRun:
    """The result of one two-phase lint invocation."""

    findings: List[Finding]
    files: int = 0
    cache_hits: int = 0
    cache_misses: int = 0


class Linter:
    """Parse files once, dispatch AST nodes to per-file rules, then run
    the whole-program rules over the assembled project."""

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        project_rules: Optional[Sequence[ProjectRule]] = None,
    ) -> None:
        self.rules: List[Rule] = list(rules) if rules is not None else all_rules()
        self.project_rules: List[ProjectRule] = (
            list(project_rules) if project_rules is not None
            else all_project_rules()
        )
        self._dispatch: Dict[type, List[Rule]] = {}
        for rule in self.rules:
            for node_type in rule.node_types:
                self._dispatch.setdefault(node_type, []).append(rule)

    def cache_signature(self) -> str:
        """Cache key component tying entries to the active rule set."""
        digest = blake2b(digest_size=12)
        digest.update(f"engine:{ENGINE_VERSION}".encode())
        for rule in self.rules:
            digest.update(rule.rule_id.encode())
        return digest.hexdigest()

    # ------------------------------------------------------------------
    # phase 1: per-file
    # ------------------------------------------------------------------
    def _make_context(self, source: str, path: str) -> Optional[LintContext]:
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError:
            return None
        lines = source.splitlines()
        line_pragmas, file_pragmas = _parse_pragmas(lines)
        parts = Path(path).parts
        ctx = LintContext(
            path=Path(path),
            rel_path=path,
            source=source,
            tree=tree,
            lines=lines,
            line_pragmas=line_pragmas,
            file_pragmas=file_pragmas,
            is_benchmark="benchmarks" in parts
            or Path(path).name.startswith("bench"),
        )
        _annotate_parents(tree)
        return ctx

    def _lint_module(
        self, source: str, path: str
    ) -> Tuple[Optional[LintContext], List[Finding]]:
        """Phase-1 raw findings (pre-pragma) for one source string."""
        try:
            ctx = self._make_context(source, path)
        except SyntaxError:  # pragma: no cover - _make_context catches
            ctx = None
        if ctx is None:
            try:
                ast.parse(source, filename=path)
            except SyntaxError as error:
                return None, [
                    Finding(
                        rule_id="E001",
                        path=path,
                        line=error.lineno or 1,
                        col=error.offset or 0,
                        message=f"syntax error: {error.msg}",
                    )
                ]
            return None, []  # pragma: no cover - unreachable
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            for rule in self._dispatch.get(type(node), ()):
                findings.extend(rule.visit(node, ctx))
        return ctx, findings

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def lint_source(
        self, source: str, path: str = "<string>", root: Optional[Path] = None
    ) -> List[Finding]:
        """Lint one source string with the per-file rules only;
        ``path`` is used for reporting only.  (Whole-program rules need
        a project — see :meth:`run_paths` or
        ``Project.from_sources``.)"""
        ctx, findings = self._lint_module(source, path)
        if ctx is not None:
            findings = [f for f in findings if not ctx.suppressed(f)]
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return findings

    def lint_file(self, path: Path, root: Optional[Path] = None) -> List[Finding]:
        rel = _rel_path(path, root)
        source = path.read_text(encoding="utf-8")
        return self.lint_source(source, path=rel)

    def lint_paths(
        self, paths: Iterable[Path], root: Optional[Path] = None
    ) -> List[Finding]:
        """Two-phase lint of every ``.py`` file under each path; see
        :meth:`run_paths` for cache / diff-scoped variants."""
        return self.run_paths(paths, root=root).findings

    def run_paths(
        self,
        paths: Iterable[Path],
        root: Optional[Path] = None,
        cache: Optional[ParseCache] = None,
        changed: Optional[Set[str]] = None,
    ) -> LintRun:
        """Lint ``paths`` through both phases.

        ``cache`` replays phase-1 results for unchanged files;
        ``changed`` (a set of repo-relative paths) restricts *reported*
        findings to those files while the whole-program phase still
        sees the full tree — diff-scoped lint must not lose cross-file
        context.
        """
        from repro.analysis.project import Project, module_info

        contexts: List[LintContext] = []
        raw: List[Finding] = []
        raw_by_file: Dict[str, List[Finding]] = {}
        files = 0
        for file_path in self._iter_files(paths):
            files += 1
            rel = _rel_path(file_path, root)
            cached = cache.get(rel, file_path) if cache is not None else None
            if cached is not None:
                file_findings, line_pragmas, file_pragmas = cached
                source = file_path.read_text(encoding="utf-8")
                ctx = self._make_context(source, rel)
                if ctx is not None:
                    ctx.line_pragmas = line_pragmas
                    ctx.file_pragmas = file_pragmas
                    contexts.append(ctx)
            else:
                source = file_path.read_text(encoding="utf-8")
                ctx, file_findings = self._lint_module(source, rel)
                if ctx is not None:
                    contexts.append(ctx)
                    if cache is not None:
                        cache.put(
                            rel, file_path,
                            (file_findings, ctx.line_pragmas,
                             ctx.file_pragmas),
                        )
            raw.extend(file_findings)
            raw_by_file.setdefault(rel, []).extend(file_findings)

        # phase 2: whole-program rules over the assembled project
        project_findings: List[Finding] = []
        context_by_path: Dict[str, LintContext] = {
            ctx.rel_path: ctx for ctx in contexts
        }
        if contexts and self.project_rules:
            project = Project([module_info(ctx) for ctx in contexts])
            project.file_findings = raw_by_file
            # rules run in id order; each rule's raw findings join the
            # per-file pool so META001 (sorted last) audits pragma
            # liveness against *everything* that fired
            for rule in self.project_rules:
                rule_findings = list(rule.visit_project(project))
                project_findings.extend(rule_findings)
                for finding in rule_findings:
                    raw_by_file.setdefault(finding.path, []).append(finding)

        findings = []
        for finding in raw + project_findings:
            ctx = context_by_path.get(finding.path)
            if ctx is not None and ctx.suppressed(finding):
                continue
            findings.append(finding)
        if changed is not None:
            findings = [f for f in findings if f.path in changed]
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        if cache is not None:
            cache.save()
        return LintRun(
            findings=findings,
            files=files,
            cache_hits=cache.hits if cache is not None else 0,
            cache_misses=cache.misses if cache is not None else 0,
        )

    @staticmethod
    def _iter_files(paths: Iterable[Path]) -> Iterator[Path]:
        for target in paths:
            target = Path(target)
            files = [target] if target.is_file() else sorted(target.rglob("*.py"))
            for file_path in files:
                if _SKIP_PARTS.intersection(file_path.parts):
                    continue
                yield file_path


def _rel_path(path: Path, root: Optional[Path]) -> str:
    if root is not None:
        try:
            return str(path.resolve().relative_to(Path(root).resolve()))
        except ValueError:
            return str(path)
    return str(path)


# ----------------------------------------------------------------------
# shared AST helpers used by several rule modules
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> str:
    """Render ``a.b.c`` attribute/name chains; '' for anything else."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return ""


def enclosing_function(
    ctx: LintContext, node: ast.AST
) -> Optional[ast.AST]:
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def enclosing_with_lock(ctx: LintContext, node: ast.AST) -> bool:
    """True when ``node`` sits inside ``with <something lock-ish>:``."""
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, ast.With):
            for item in ancestor.items:
                name = dotted_name(item.context_expr)
                if "lock" in name.lower():
                    return True
    return False
