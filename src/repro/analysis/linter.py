"""The repro-lint rule engine.

A single-pass AST walker with a rule registry: each :class:`Rule`
declares the node types it wants to see, the engine parses every file
once and dispatches nodes to interested rules.  Rules yield
:class:`Finding` objects; the engine filters them through inline
``# repro-lint: disable=RULE`` pragmas before returning.

The rules themselves live in :mod:`repro.analysis.rules` and encode the
reproduction's two load-bearing invariants (see docs/static_analysis.md):
every code path must be seeded-deterministic, and every verifier must
stay inside the closed ternary ``Verdict`` space — plus the concurrency
discipline the batched engine introduced in PR 1.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Type

#: matches ``# repro-lint: disable=DET001`` / ``disable-file=DET001,CTR003``
_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(disable|disable-file)\s*=\s*([A-Za-z0-9_,\s]+)"
)

#: directory / file names never linted
_SKIP_PARTS = {"__pycache__", ".git", ".pytest_cache"}


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule_id: str
    path: str
    line: int
    col: int
    message: str
    snippet: str = ""

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


class Rule:
    """Base class for lint rules.

    Subclasses set ``rule_id``/``name``/``category``/``description`` and
    the AST ``node_types`` they inspect, then implement :meth:`visit`.
    """

    rule_id: str = ""
    name: str = ""
    category: str = ""
    description: str = ""
    node_types: Tuple[type, ...] = ()

    def visit(self, node: ast.AST, ctx: "LintContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(
        self, ctx: "LintContext", node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node``."""
        line = getattr(node, "lineno", 1)
        col = getattr(node, "col_offset", 0)
        return Finding(
            rule_id=self.rule_id,
            path=ctx.rel_path,
            line=line,
            col=col,
            message=message,
            snippet=ctx.line_text(line),
        )


_RULE_REGISTRY: List[Type[Rule]] = []


def register(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the global registry."""
    if not cls.rule_id:
        raise ValueError(f"rule {cls.__name__} has no rule_id")
    if any(existing.rule_id == cls.rule_id for existing in _RULE_REGISTRY):
        raise ValueError(f"duplicate rule id {cls.rule_id}")
    _RULE_REGISTRY.append(cls)
    return cls


def all_rules() -> List[Rule]:
    """One fresh instance of every registered rule, id-sorted."""
    # importing the package populates the registry
    from repro.analysis import rules as _rules  # noqa: F401

    return [cls() for cls in sorted(_RULE_REGISTRY, key=lambda c: c.rule_id)]


@dataclass
class LintContext:
    """Everything a rule may ask about the file being linted."""

    path: Path
    rel_path: str
    source: str
    tree: ast.AST
    lines: List[str] = field(default_factory=list)
    #: line number -> set of rule ids disabled on that line
    line_pragmas: Dict[int, set] = field(default_factory=dict)
    #: rule ids disabled for the whole file
    file_pragmas: set = field(default_factory=set)
    is_benchmark: bool = False

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return getattr(node, "_repro_parent", None)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self.parent(node)
        while current is not None:
            yield current
            current = self.parent(current)

    def suppressed(self, finding: Finding) -> bool:
        if finding.rule_id in self.file_pragmas:
            return True
        return finding.rule_id in self.line_pragmas.get(finding.line, set())


def _parse_pragmas(lines: Sequence[str]) -> Tuple[Dict[int, set], set]:
    line_pragmas: Dict[int, set] = {}
    file_pragmas: set = set()
    for number, text in enumerate(lines, start=1):
        match = _PRAGMA_RE.search(text)
        if match is None:
            continue
        kind, raw_ids = match.groups()
        ids = {part.strip().upper() for part in raw_ids.split(",") if part.strip()}
        if kind == "disable-file":
            file_pragmas |= ids
        else:
            line_pragmas.setdefault(number, set()).update(ids)
    return line_pragmas, file_pragmas


def _annotate_parents(tree: ast.AST) -> None:
    for parent in ast.walk(tree):
        for child in ast.iter_child_nodes(parent):
            child._repro_parent = parent  # type: ignore[attr-defined]


class Linter:
    """Parse files once and dispatch AST nodes to registered rules."""

    def __init__(self, rules: Optional[Sequence[Rule]] = None) -> None:
        self.rules: List[Rule] = list(rules) if rules is not None else all_rules()
        self._dispatch: Dict[type, List[Rule]] = {}
        for rule in self.rules:
            for node_type in rule.node_types:
                self._dispatch.setdefault(node_type, []).append(rule)

    # ------------------------------------------------------------------
    # entry points
    # ------------------------------------------------------------------
    def lint_source(
        self, source: str, path: str = "<string>", root: Optional[Path] = None
    ) -> List[Finding]:
        """Lint one source string; ``path`` is used for reporting only."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as error:
            return [
                Finding(
                    rule_id="E001",
                    path=path,
                    line=error.lineno or 1,
                    col=error.offset or 0,
                    message=f"syntax error: {error.msg}",
                )
            ]
        lines = source.splitlines()
        line_pragmas, file_pragmas = _parse_pragmas(lines)
        parts = Path(path).parts
        ctx = LintContext(
            path=Path(path),
            rel_path=path,
            source=source,
            tree=tree,
            lines=lines,
            line_pragmas=line_pragmas,
            file_pragmas=file_pragmas,
            is_benchmark="benchmarks" in parts
            or Path(path).name.startswith("bench"),
        )
        _annotate_parents(tree)
        findings: List[Finding] = []
        for node in ast.walk(tree):
            for rule in self._dispatch.get(type(node), ()):
                findings.extend(rule.visit(node, ctx))
        findings = [f for f in findings if not ctx.suppressed(f)]
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return findings

    def lint_file(self, path: Path, root: Optional[Path] = None) -> List[Finding]:
        rel = str(path)
        if root is not None:
            try:
                rel = str(path.resolve().relative_to(Path(root).resolve()))
            except ValueError:
                rel = str(path)
        source = path.read_text(encoding="utf-8")
        return self.lint_source(source, path=rel)

    def lint_paths(
        self, paths: Iterable[Path], root: Optional[Path] = None
    ) -> List[Finding]:
        """Lint every ``.py`` file under each path (files or directories)."""
        findings: List[Finding] = []
        for target in paths:
            target = Path(target)
            files = [target] if target.is_file() else sorted(target.rglob("*.py"))
            for file_path in files:
                if _SKIP_PARTS.intersection(file_path.parts):
                    continue
                findings.extend(self.lint_file(file_path, root=root))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule_id))
        return findings


# ----------------------------------------------------------------------
# shared AST helpers used by several rule modules
# ----------------------------------------------------------------------
def dotted_name(node: ast.AST) -> str:
    """Render ``a.b.c`` attribute/name chains; '' for anything else."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return ""


def enclosing_function(
    ctx: LintContext, node: ast.AST
) -> Optional[ast.AST]:
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return ancestor
    return None


def enclosing_with_lock(ctx: LintContext, node: ast.AST) -> bool:
    """True when ``node`` sits inside ``with <something lock-ish>:``."""
    for ancestor in ctx.ancestors(node):
        if isinstance(ancestor, ast.With):
            for item in ancestor.items:
                name = dotted_name(item.context_expr)
                if "lock" in name.lower():
                    return True
    return False
