"""Interprocedural determinism taint (the engine behind IPD001).

The intra-file DET rules catch a ``time.time()`` in the function that
calls it; they are blind to a helper that *returns* wall-clock and a
caller three modules away that feeds it into a provenance record.  This
module closes that gap with a classic context-insensitive taint
fixpoint over the call graph:

* **sources** — direct reads of nondeterminism: wall clock
  (``time.time``/``monotonic``/``perf_counter``, ``datetime.now``),
  unseeded RNG (``random.random``, ``random.Random()`` with no seed,
  ``numpy.random.*`` module-level, ``default_rng()`` with no seed),
  entropy (``os.urandom``, ``uuid.uuid4``, ``secrets.*``).
  ``repro/obs/clock.py`` is exempt — it is the *sanctioned* wrapper
  (tests inject a ``TickClock``), and benchmarks are exempt wholesale;
* **propagation** — flow-insensitive within a function (any name
  assigned from a tainted expression is tainted), and across calls in
  both directions: a function whose return value may be tainted taints
  its call sites, and passing a tainted argument taints the callee's
  parameter.  Iterated to a fixpoint (the lattice is tiny and
  monotone, convergence is fast);
* **sinks** — where determinism is load-bearing: the span tracer
  (``repro.obs.trace``), provenance records (``repro.provenance.*``),
  and verdict aggregation (``repro.verify.verdict``).  A tainted value
  reaching a sink argument is a finding.

Over-approximation is deliberate (may-taint, not must-taint); pragmas
and explicit seeding are the escape hatches.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph, CallSite, dotted
from repro.analysis.project import FunctionInfo, ModuleInfo, Project

#: dotted call names that read nondeterminism directly (after alias
#: expansion through the module's import map)
_SOURCE_CALLS = {
    "time.time", "time.time_ns", "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns", "time.process_time",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
    "secrets.token_bytes", "secrets.token_hex", "secrets.token_urlsafe",
    "secrets.randbelow", "secrets.choice",
}

#: module-level ``random.*`` / ``numpy.random.*`` functions share one
#: unseeded global state — any of them is a source
_RANDOM_MODULE_CALLS = {
    "random.random", "random.randint", "random.randrange", "random.choice",
    "random.choices", "random.sample", "random.shuffle", "random.uniform",
    "random.gauss", "random.betavariate", "random.getrandbits",
}

#: sink modules: nondeterministic values must not reach these
_SINK_MODULES = (
    "repro.obs.trace",
    "repro.provenance.store",
    "repro.provenance.generation",
    "repro.verify.verdict",
)

#: files whose *direct* clock/RNG reads are sanctioned (the injectable
#: clock seam) — they are the boundary, not a leak through it
_EXEMPT_SOURCE_FILES = ("obs/clock.py",)

#: builtin calls that neutralize value-nondeterminism for our purposes
#: (structure/size queries, type predicates)
_NEUTRAL_BUILTINS = {"len", "bool", "isinstance", "type", "id", "repr"}


@dataclass
class TaintedCall:
    """A tainted value reaching a sink argument."""

    caller: str              #: qualname of the function containing the sink call
    sink: str                #: resolved sink callee qualname
    node: ast.Call
    module: str
    source_hint: str         #: which source family started the taint


@dataclass
class _FunctionTaint:
    tainted_names: Set[str] = field(default_factory=set)
    tainted_params: Set[str] = field(default_factory=set)
    returns_tainted: bool = False
    source_hint: str = ""


class TaintAnalysis:
    """Context-insensitive determinism-taint fixpoint over a project."""

    def __init__(self, project: Project, graph: CallGraph) -> None:
        self.project = project
        self.graph = graph
        self._state: Dict[str, _FunctionTaint] = {
            name: _FunctionTaint() for name in sorted(project.functions)
        }
        self._run_fixpoint()

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def returns_tainted(self, qualname: str) -> bool:
        state = self._state.get(qualname)
        return state is not None and state.returns_tainted

    def sink_violations(self) -> List[TaintedCall]:
        """Every tainted-value-reaches-sink call site, sorted."""
        violations: List[TaintedCall] = []
        for qualname in sorted(self._state):
            fn = self.project.functions[qualname]
            mod = self.project.modules[fn.module]
            if self._exempt(mod):
                continue
            state = self._state[qualname]
            for site in self.graph.callees(qualname):
                sink = self._sink_of(site)
                if sink is None:
                    continue
                for arg in self._call_args(site.node):
                    if self._expr_tainted(arg, fn, mod, state):
                        violations.append(
                            TaintedCall(
                                caller=qualname,
                                sink=sink,
                                node=site.node,
                                module=fn.module,
                                source_hint=state.source_hint or "clock/rng",
                            )
                        )
                        break
        violations.sort(
            key=lambda v: (v.module, v.node.lineno, v.node.col_offset, v.sink)
        )
        return violations

    # ------------------------------------------------------------------
    # fixpoint
    # ------------------------------------------------------------------
    def _run_fixpoint(self) -> None:
        # a tiny monotone lattice: tainted_names / params / returns only
        # grow, so iterating until no change terminates
        for _ in range(len(self._state) + 2):
            changed = False
            for qualname in sorted(self._state):
                if self._update_function(qualname):
                    changed = True
            if not changed:
                return

    def _update_function(self, qualname: str) -> bool:
        fn = self.project.functions[qualname]
        mod = self.project.modules[fn.module]
        state = self._state[qualname]
        changed = False
        if self._exempt(mod):
            return False
        # (re)propagate through assignments until locally stable
        for _ in range(8):
            local_change = False
            for node in fn.body_nodes():
                if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                    value = node.value
                    if value is None:
                        continue
                    if self._expr_tainted(value, fn, mod, state):
                        targets = (
                            node.targets if isinstance(node, ast.Assign)
                            else [node.target]
                        )
                        for target in targets:
                            for name in _target_names(target):
                                if name not in state.tainted_names:
                                    state.tainted_names.add(name)
                                    local_change = True
            if not local_change:
                break
            changed = True
        # return taint
        if not state.returns_tainted:
            for node in fn.body_nodes():
                if isinstance(node, ast.Return) and node.value is not None:
                    if self._expr_tainted(node.value, fn, mod, state):
                        state.returns_tainted = True
                        changed = True
                        break
            if isinstance(fn.node, ast.Lambda) and not state.returns_tainted:
                if self._expr_tainted(fn.node.body, fn, mod, state):
                    state.returns_tainted = True
                    changed = True
        # argument taint crosses into callees' parameters
        for site in self.graph.callees(qualname):
            if site.callee not in self._state:
                continue
            callee_fn = self.project.functions[site.callee]
            callee_state = self._state[site.callee]
            params = callee_fn.param_names()
            offset = 1 if callee_fn.is_method and params[:1] == ["self"] else 0
            for position, arg in enumerate(site.node.args):
                if not self._expr_tainted(arg, fn, mod, state):
                    continue
                index = position + offset
                if index < len(params):
                    name = params[index]
                    if name not in callee_state.tainted_params:
                        callee_state.tainted_params.add(name)
                        callee_state.tainted_names.add(name)
                        if not callee_state.source_hint:
                            callee_state.source_hint = (
                                state.source_hint or "argument"
                            )
                        changed = True
            for keyword in site.node.keywords:
                if keyword.arg is None:
                    continue
                if self._expr_tainted(keyword.value, fn, mod, state):
                    if keyword.arg in params and (
                        keyword.arg not in callee_state.tainted_params
                    ):
                        callee_state.tainted_params.add(keyword.arg)
                        callee_state.tainted_names.add(keyword.arg)
                        if not callee_state.source_hint:
                            callee_state.source_hint = (
                                state.source_hint or "argument"
                            )
                        changed = True
        return changed

    # ------------------------------------------------------------------
    # expression taint
    # ------------------------------------------------------------------
    def _expr_tainted(
        self,
        node: ast.AST,
        fn: FunctionInfo,
        mod: ModuleInfo,
        state: _FunctionTaint,
    ) -> bool:
        if isinstance(node, ast.Name):
            return node.id in state.tainted_names
        if isinstance(node, ast.Call):
            hint = self._source_call(node, mod)
            if hint is not None:
                if not state.source_hint:
                    state.source_hint = hint
                return True
            func = node.func
            if isinstance(func, ast.Name) and func.id in _NEUTRAL_BUILTINS:
                return False
            resolved = self._resolve_site(fn, node)
            if resolved is not None and self.returns_tainted(resolved):
                if not state.source_hint:
                    callee_hint = self._state[resolved].source_hint
                    state.source_hint = callee_hint or "call"
                return True
            # a call *on* a tainted receiver stays tainted
            if isinstance(func, ast.Attribute):
                return self._expr_tainted(func.value, fn, mod, state)
            return False
        if isinstance(node, ast.Attribute):
            return self._expr_tainted(node.value, fn, mod, state)
        if isinstance(node, ast.Subscript):
            return self._expr_tainted(node.value, fn, mod, state)
        if isinstance(node, (ast.BinOp,)):
            return self._expr_tainted(
                node.left, fn, mod, state
            ) or self._expr_tainted(node.right, fn, mod, state)
        if isinstance(node, ast.UnaryOp):
            return self._expr_tainted(node.operand, fn, mod, state)
        if isinstance(node, ast.IfExp):
            return self._expr_tainted(
                node.body, fn, mod, state
            ) or self._expr_tainted(node.orelse, fn, mod, state)
        if isinstance(node, ast.JoinedStr):
            return any(
                self._expr_tainted(v.value, fn, mod, state)
                for v in node.values
                if isinstance(v, ast.FormattedValue)
            )
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return any(
                self._expr_tainted(e, fn, mod, state) for e in node.elts
            )
        if isinstance(node, ast.Dict):
            return any(
                v is not None and self._expr_tainted(v, fn, mod, state)
                for v in list(node.keys) + list(node.values)
            )
        if isinstance(node, ast.FormattedValue):
            return self._expr_tainted(node.value, fn, mod, state)
        return False

    def _resolve_site(
        self, fn: FunctionInfo, node: ast.Call
    ) -> Optional[str]:
        for site in self.graph.callees(fn.qualname):
            if site.node is node and site.callee in self._state:
                return site.callee
        return None

    def _source_call(self, node: ast.Call, mod: ModuleInfo) -> Optional[str]:
        """Is this call a direct nondeterminism source?  Returns a
        human-readable hint, or None."""
        chain = dotted(node.func)
        if not chain:
            return None
        head = chain.split(".")[0]
        expanded = chain
        if head in mod.imports:
            expanded = ".".join([mod.imports[head]] + chain.split(".")[1:])
        if expanded in _SOURCE_CALLS:
            return expanded
        if expanded in _RANDOM_MODULE_CALLS:
            return expanded
        if expanded.startswith("numpy.random.") and not node.args:
            return expanded
        if expanded.startswith("numpy.random.") and expanded.endswith(
            ("shuffle", "permutation", "random", "rand", "randn", "randint")
        ):
            return expanded
        # random.Random() / default_rng() with no seed argument
        leaf = expanded.split(".")[-1]
        if leaf in ("Random", "default_rng") and not node.args and not (
            node.keywords
        ):
            if expanded.startswith(("random.", "numpy.random.")):
                return expanded
        return None

    def _sink_of(self, site: CallSite) -> Optional[str]:
        if site.callee.startswith(("external:", "param:")):
            return None
        callee_fn = self.project.functions.get(site.callee)
        if callee_fn is None:
            return None
        if callee_fn.module in _SINK_MODULES:
            return site.callee
        return None

    @staticmethod
    def _call_args(node: ast.Call) -> List[ast.AST]:
        args: List[ast.AST] = list(node.args)
        args.extend(k.value for k in node.keywords)
        return args

    @staticmethod
    def _exempt(mod: ModuleInfo) -> bool:
        if mod.ctx.is_benchmark:
            return True
        rel = mod.rel_path.replace("\\", "/")
        return any(rel.endswith(suffix) for suffix in _EXEMPT_SOURCE_FILES)


def _target_names(target: ast.AST) -> List[str]:
    names: List[str] = []
    if isinstance(target, ast.Name):
        names.append(target.id)
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            names.extend(_target_names(element))
    elif isinstance(target, ast.Starred):
        names.extend(_target_names(target.value))
    return names
