"""Committed suppressions for repro-lint.

A baseline (``lint_baseline.json``) grandfathers known findings so the
linter can gate CI on *new* violations immediately even while old ones
are being worked off.  Entries match on ``(rule, path, normalized
snippet)`` — not line numbers — so unrelated edits above a finding do
not invalidate the baseline.  Each entry carries a count: two identical
offending lines in one file need a count of 2, and fixing one of them
makes the other still-suppressed.

Format **v2** (whole-program era) additionally records the rule
universe the baseline was written against (``rules``), so a baseline
whose entries reference rules that no longer exist is detectable by
:meth:`Baseline.stale_rules` instead of silently suppressing nothing.
v1 files (no ``rules`` key) still load; rewriting with
``--write-baseline`` migrates them.
"""

from __future__ import annotations

import json
import re
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.analysis.linter import Finding

_WS_RE = re.compile(r"\s+")


def fingerprint(finding: Finding) -> Tuple[str, str, str]:
    """Line-number-independent identity of a finding."""
    snippet = _WS_RE.sub(" ", finding.snippet).strip()
    return (finding.rule_id, finding.path, snippet)


class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    def __init__(
        self,
        entries: Sequence[dict] = (),
        rules: Sequence[str] = (),
    ) -> None:
        self._counts: Counter = Counter()
        self._entries: List[dict] = []
        #: rule universe recorded at write time (v2; empty for v1 files)
        self.rules: List[str] = sorted(rules)
        for entry in entries:
            self._add(entry)

    def stale_rules(self, known_rule_ids: Sequence[str]) -> List[str]:
        """Rule ids referenced by entries but absent from the running
        rule set — a baseline that can only rot, surfaced explicitly."""
        known = set(known_rule_ids)
        referenced = {entry["rule"] for entry in self._entries}
        return sorted(referenced - known)

    def _add(self, entry: dict) -> None:
        key = (entry["rule"], entry["path"], entry["snippet"])
        self._counts[key] += int(entry.get("count", 1))
        self._entries.append(dict(entry))

    def __len__(self) -> int:
        return sum(self._counts.values())

    def filter(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], int]:
        """(surviving findings, suppressed count); counts are consumed."""
        remaining = Counter(self._counts)
        kept: List[Finding] = []
        suppressed = 0
        for finding in findings:
            key = fingerprint(finding)
            if remaining[key] > 0:
                remaining[key] -= 1
                suppressed += 1
            else:
                kept.append(finding)
        return kept, suppressed

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    @classmethod
    def from_findings(
        cls,
        findings: Sequence[Finding],
        rules: Sequence[str] = (),
    ) -> "Baseline":
        """Baseline that suppresses exactly ``findings``."""
        counts: Counter = Counter(fingerprint(f) for f in findings)
        reasons: Dict[Tuple[str, str, str], str] = {}
        for finding in findings:
            reasons.setdefault(fingerprint(finding), finding.message)
        entries = [
            {
                "rule": rule,
                "path": path,
                "snippet": snippet,
                "count": count,
                "reason": reasons[(rule, path, snippet)],
            }
            for (rule, path, snippet), count in sorted(counts.items())
        ]
        return cls(entries, rules=rules)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        """Load a v1 or v2 baseline file (v1 has no ``rules`` key)."""
        with Path(path).open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
        return cls(
            payload.get("entries", []), rules=payload.get("rules", [])
        )

    def save(self, path: Union[str, Path]) -> None:
        payload = {
            "version": 2,
            "rules": self.rules,
            "entries": self._entries,
        }
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
