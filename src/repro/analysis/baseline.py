"""Committed suppressions for repro-lint.

A baseline (``lint_baseline.json``) grandfathers known findings so the
linter can gate CI on *new* violations immediately even while old ones
are being worked off.  Entries match on ``(rule, path, normalized
snippet)`` — not line numbers — so unrelated edits above a finding do
not invalidate the baseline.  Each entry carries a count: two identical
offending lines in one file need a count of 2, and fixing one of them
makes the other still-suppressed.
"""

from __future__ import annotations

import json
import re
from collections import Counter
from pathlib import Path
from typing import Dict, List, Sequence, Tuple, Union

from repro.analysis.linter import Finding

_WS_RE = re.compile(r"\s+")


def fingerprint(finding: Finding) -> Tuple[str, str, str]:
    """Line-number-independent identity of a finding."""
    snippet = _WS_RE.sub(" ", finding.snippet).strip()
    return (finding.rule_id, finding.path, snippet)


class Baseline:
    """A multiset of grandfathered finding fingerprints."""

    def __init__(self, entries: Sequence[dict] = ()) -> None:
        self._counts: Counter = Counter()
        self._entries: List[dict] = []
        for entry in entries:
            self._add(entry)

    def _add(self, entry: dict) -> None:
        key = (entry["rule"], entry["path"], entry["snippet"])
        self._counts[key] += int(entry.get("count", 1))
        self._entries.append(dict(entry))

    def __len__(self) -> int:
        return sum(self._counts.values())

    def filter(
        self, findings: Sequence[Finding]
    ) -> Tuple[List[Finding], int]:
        """(surviving findings, suppressed count); counts are consumed."""
        remaining = Counter(self._counts)
        kept: List[Finding] = []
        suppressed = 0
        for finding in findings:
            key = fingerprint(finding)
            if remaining[key] > 0:
                remaining[key] -= 1
                suppressed += 1
            else:
                kept.append(finding)
        return kept, suppressed

    # ------------------------------------------------------------------
    # persistence
    # ------------------------------------------------------------------
    @classmethod
    def from_findings(cls, findings: Sequence[Finding]) -> "Baseline":
        """Baseline that suppresses exactly ``findings``."""
        counts: Counter = Counter(fingerprint(f) for f in findings)
        reasons: Dict[Tuple[str, str, str], str] = {}
        for finding in findings:
            reasons.setdefault(fingerprint(finding), finding.message)
        entries = [
            {
                "rule": rule,
                "path": path,
                "snippet": snippet,
                "count": count,
                "reason": reasons[(rule, path, snippet)],
            }
            for (rule, path, snippet), count in sorted(counts.items())
        ]
        return cls(entries)

    @classmethod
    def load(cls, path: Union[str, Path]) -> "Baseline":
        with Path(path).open("r", encoding="utf-8") as handle:
            payload = json.load(handle)
        return cls(payload.get("entries", []))

    def save(self, path: Union[str, Path]) -> None:
        payload = {"version": 1, "entries": self._entries}
        Path(path).write_text(
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
