"""Observability rules (OBS*).

The observability layer routes every timing read through an injectable
:class:`repro.obs.clock.Clock` so tests can freeze time and export
byte-stable traces.  A stray ``time.monotonic()`` in pipeline code
bypasses that seam and silently re-introduces wall-clock nondeterminism.

OBS002 guards the other observability contract: metric names.  The
catalogue in docs/observability.md is greppable only because every
``counter()/gauge()/histogram()`` call site names its instrument with a
dotted-lowercase string literal; a computed name hides the instrument
from the catalogue and from the Prometheus exposition's reviewers.
"""

from __future__ import annotations

import ast
import re
from pathlib import PurePosixPath
from typing import Iterator

from repro.analysis.linter import (
    Finding,
    LintContext,
    Rule,
    dotted_name,
    register,
)

#: monotonic-clock reads only repro/obs/clock.py may perform
_CLOCK_CALLS = {
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.thread_time", "time.thread_time_ns",
}

#: the one module allowed to read the process clock directly
_CLOCK_MODULE = ("repro", "obs", "clock.py")


def _is_clock_module(rel_path: str) -> bool:
    parts = PurePosixPath(rel_path.replace("\\", "/")).parts
    return parts[-3:] == _CLOCK_MODULE


@register
class DirectClockReadRule(Rule):
    rule_id = "OBS001"
    name = "direct-clock-read"
    category = "observability"
    description = (
        "time.monotonic()/time.perf_counter() outside repro/obs/clock.py "
        "bypasses the injectable Clock; take a Clock and call .now() so "
        "tests can freeze time (benchmarks are exempt)."
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: LintContext) -> Iterator[Finding]:
        if ctx.is_benchmark or _is_clock_module(ctx.rel_path):
            return
        name = dotted_name(node.func)
        if name in _CLOCK_CALLS:
            yield self.finding(
                ctx, node,
                f"{name}() reads the process clock directly; inject a "
                "repro.obs.clock.Clock and call .now() instead",
            )


#: a full metric name: dotted lowercase, at least two segments
_METRIC_NAME = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")
#: a literal prefix an f-string name may open with (``serve.responses.``)
_METRIC_PREFIX = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]*)+\.$")
#: characters any other literal f-string fragment may contribute
_METRIC_FRAGMENT = re.compile(r"^[a-z0-9_.]*$")

#: registry accessor methods whose first argument is a metric name
_INSTRUMENT_METHODS = {"counter", "gauge", "histogram"}


def _fstring_name_ok(node: ast.JoinedStr) -> bool:
    """An f-string name is fine when its shape is still greppable: it
    opens with a literal ``component.`` prefix and every other literal
    fragment stays inside metric-name characters
    (``f"serve.responses.{status}"``)."""
    if not node.values:
        return False
    head = node.values[0]
    if not (
        isinstance(head, ast.Constant)
        and isinstance(head.value, str)
        and _METRIC_PREFIX.match(head.value)
    ):
        return False
    for value in node.values[1:]:
        if isinstance(value, ast.Constant):
            if not (
                isinstance(value.value, str)
                and _METRIC_FRAGMENT.match(value.value)
            ):
                return False
    return True


@register
class MetricNameRule(Rule):
    rule_id = "OBS002"
    name = "computed-metric-name"
    category = "observability"
    description = (
        "counter()/gauge()/histogram() must name their instrument with "
        "a dotted-lowercase string literal (component.name) — or an "
        "f-string opening with such a literal prefix — so the metric "
        "catalogue in docs/observability.md stays greppable."
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: LintContext) -> Iterator[Finding]:
        func = node.func
        if not (
            isinstance(func, ast.Attribute)
            and func.attr in _INSTRUMENT_METHODS
        ):
            return
        if not node.args:
            return
        name_arg = node.args[0]
        if isinstance(name_arg, ast.Constant):
            if (
                isinstance(name_arg.value, str)
                and _METRIC_NAME.match(name_arg.value)
            ):
                return
            yield self.finding(
                ctx, node,
                f".{func.attr}() metric name {name_arg.value!r} does "
                "not match the dotted-lowercase component.name pattern",
            )
            return
        if isinstance(name_arg, ast.JoinedStr):
            if _fstring_name_ok(name_arg):
                return
            yield self.finding(
                ctx, node,
                f".{func.attr}() f-string metric name must open with a "
                "literal dotted-lowercase prefix ending in '.' "
                "(like f\"serve.responses.{status}\")",
            )
            return
        yield self.finding(
            ctx, node,
            f".{func.attr}() metric name is computed; use a "
            "dotted-lowercase string literal so the catalogue in "
            "docs/observability.md stays greppable",
        )
