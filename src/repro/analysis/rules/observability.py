"""Observability rules (OBS*).

The observability layer routes every timing read through an injectable
:class:`repro.obs.clock.Clock` so tests can freeze time and export
byte-stable traces.  A stray ``time.monotonic()`` in pipeline code
bypasses that seam and silently re-introduces wall-clock nondeterminism.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Iterator

from repro.analysis.linter import (
    Finding,
    LintContext,
    Rule,
    dotted_name,
    register,
)

#: monotonic-clock reads only repro/obs/clock.py may perform
_CLOCK_CALLS = {
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
}

#: the one module allowed to read the process clock directly
_CLOCK_MODULE = ("repro", "obs", "clock.py")


def _is_clock_module(rel_path: str) -> bool:
    parts = PurePosixPath(rel_path.replace("\\", "/")).parts
    return parts[-3:] == _CLOCK_MODULE


@register
class DirectClockReadRule(Rule):
    rule_id = "OBS001"
    name = "direct-clock-read"
    category = "observability"
    description = (
        "time.monotonic()/time.perf_counter() outside repro/obs/clock.py "
        "bypasses the injectable Clock; take a Clock and call .now() so "
        "tests can freeze time (benchmarks are exempt)."
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: LintContext) -> Iterator[Finding]:
        if ctx.is_benchmark or _is_clock_module(ctx.rel_path):
            return
        name = dotted_name(node.func)
        if name in _CLOCK_CALLS:
            yield self.finding(
                ctx, node,
                f"{name}() reads the process clock directly; inject a "
                "repro.obs.clock.Clock and call .now() instead",
            )
