"""Whole-program rule families: lock order, taint, escape analysis.

These are the rules the per-file engine structurally cannot express —
each one needs the :class:`~repro.analysis.project.Project` symbol
tables and the conservative :class:`~repro.analysis.callgraph.CallGraph`:

* **IPC001** — lock-order cycles.  Builds a lock graph (edge ``A -> B``
  when some code path acquires ``B`` while holding ``A``, directly or
  transitively through calls) and flags every edge that participates in
  a cycle: two threads taking the same pair of locks in opposite order
  is a potential deadlock no test will reliably reproduce.
* **IPC002** — blocking or unknown code under a lock: ``time.sleep``,
  zero-argument ``.join()`` / ``.result()`` / ``.wait()``, and calls to
  *injected callables* (function parameters) while a lock is held.
  Arbitrary code under a lock is a latency cliff at best and a deadlock
  ingredient at worst.
* **IPD001** — determinism taint: wall-clock / unseeded-RNG values
  flowing through returns and arguments into the trace, provenance, or
  verdict layers (see :mod:`repro.analysis.taint`).
* **IPE001** — escape analysis: unsynchronized check-then-act lazy
  initialization (``if self._x is None: self._x = ...``, including the
  guard-return form and ``if key not in CACHE: CACHE[key] = ...``) in
  functions reachable from a **thread entry point**.  Two pool workers
  hitting the window between check and act double-build at best and
  publish a half-built structure at worst.

Precision choices (documented in docs/static_analysis.md): lock
identities are name-qualified, so the lock graph only tracks locks the
code names lock-ishly; transitive lock acquisition does not follow
dynamic-dispatch fallback edges (too many false cycles); self-loops are
not reported (``RLock`` re-entry is legal and identity cannot tell the
two apart — the runtime sanitizer covers that case).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.callgraph import CallGraph, dotted
from repro.analysis.linter import Finding, ProjectRule, register_project
from repro.analysis.project import FunctionInfo, ModuleInfo, Project


# ----------------------------------------------------------------------
# shared, memoized per-project analyses
# ----------------------------------------------------------------------
def _graph(project: Project) -> CallGraph:
    graph = getattr(project, "_callgraph", None)
    if graph is None:
        graph = CallGraph(project)
        project._callgraph = graph  # type: ignore[attr-defined]
    return graph


def _lock_model(project: Project) -> "_LockModel":
    model = getattr(project, "_lockmodel", None)
    if model is None:
        model = _LockModel(project, _graph(project))
        project._lockmodel = model  # type: ignore[attr-defined]
    return model


def _body_walk(node: ast.AST) -> Iterator[ast.AST]:
    """Walk a statement block without descending into nested function /
    class definitions (those run on their own schedule)."""
    defs = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda, ast.ClassDef)
    stack = [s for s in getattr(node, "body", []) if not isinstance(s, defs)]
    while stack:
        current = stack.pop()
        yield current
        for child in ast.iter_child_nodes(current):
            if isinstance(child, defs):
                continue
            stack.append(child)


def _lock_identity(
    expr: ast.AST, fn: FunctionInfo, mod: ModuleInfo
) -> Optional[str]:
    """A qualified, project-stable identity for a lock expression, or
    None when the expression is not lock-ish.  ``self._lock`` ->
    ``module.Class._lock``; module-global ``_LOCK`` -> ``module._LOCK``;
    anything else lock-ish is scoped to the function."""
    name = dotted(expr)
    if not name or "lock" not in name.lower():
        return None
    if name.startswith("self.") and fn.class_name is not None:
        return f"{mod.name}.{fn.class_name}.{name.split('.', 1)[1]}"
    head = name.split(".")[0]
    target = mod.imports.get(head) or mod.top_level.get(head)
    if target is not None:
        return ".".join([target] + name.split(".")[1:])
    return f"{fn.qualname}.<{name}>"


class _LockModel:
    """Which locks each function acquires, directly and transitively,
    plus the held-while-acquiring edges between lock identities."""

    def __init__(self, project: Project, graph: CallGraph) -> None:
        self.project = project
        self.graph = graph
        #: qualname -> [(lock id, With node)]
        self.acquisitions: Dict[str, List[Tuple[str, ast.With]]] = {}
        for qualname in sorted(project.functions):
            fn = project.functions[qualname]
            mod = project.modules[fn.module]
            acquired: List[Tuple[str, ast.With]] = []
            for node in fn.body_nodes():
                if isinstance(node, ast.With):
                    for item in node.items:
                        lock = _lock_identity(item.context_expr, fn, mod)
                        if lock is not None:
                            acquired.append((lock, node))
            self.acquisitions[qualname] = acquired
        self.transitive = self._fixpoint()
        self.edges = self._edges()

    def _fixpoint(self) -> Dict[str, Set[str]]:
        acquired = {
            q: {lock for lock, _ in acqs}
            for q, acqs in self.acquisitions.items()
        }
        changed = True
        while changed:
            changed = False
            for qualname in sorted(acquired):
                for site in self.graph.callees(qualname):
                    if site.via_fallback or site.callee not in acquired:
                        continue
                    extra = acquired[site.callee] - acquired[qualname]
                    if extra:
                        acquired[qualname] |= extra
                        changed = True
        return acquired

    def _edges(self) -> List[Tuple[str, str, str, ast.AST, str]]:
        """(held, acquired, module, anchor node, description) tuples."""
        edges: List[Tuple[str, str, str, ast.AST, str]] = []
        for qualname in sorted(self.acquisitions):
            fn = self.project.functions[qualname]
            mod = self.project.modules[fn.module]
            for held, with_node in self.acquisitions[qualname]:
                body = list(_body_walk(with_node))
                body_ids = {id(n) for n in body}
                for node in body:
                    if isinstance(node, ast.With):
                        for item in node.items:
                            inner = _lock_identity(item.context_expr, fn, mod)
                            if inner is not None and inner != held:
                                edges.append((
                                    held, inner, mod.name, node,
                                    f"{qualname} acquires {inner} "
                                    f"while holding {held}",
                                ))
                for site in self.graph.callees(qualname):
                    if id(site.node) not in body_ids:
                        continue
                    if site.via_fallback:
                        continue
                    inner_locks = self.transitive.get(site.callee, set())
                    for inner in sorted(inner_locks - {held}):
                        edges.append((
                            held, inner, mod.name, site.node,
                            f"{qualname} holds {held} across a call to "
                            f"{site.callee}, which acquires {inner}",
                        ))
        return edges


# ----------------------------------------------------------------------
# IPC001: lock-order cycles
# ----------------------------------------------------------------------
@register_project
class LockOrderCycle(ProjectRule):
    rule_id = "IPC001"
    name = "lock-order-cycle"
    category = "concurrency"
    description = (
        "Two locks are acquired in opposite orders on different code "
        "paths — a potential deadlock."
    )

    def visit_project(self, project: Project) -> Iterator[Finding]:
        model = _lock_model(project)
        adjacency: Dict[str, Set[str]] = {}
        for held, acquired, *_ in model.edges:
            adjacency.setdefault(held, set()).add(acquired)

        def reaches(src: str, dst: str) -> bool:
            seen: Set[str] = set()
            stack = [src]
            while stack:
                current = stack.pop()
                if current == dst:
                    return True
                if current in seen:
                    continue
                seen.add(current)
                stack.extend(sorted(adjacency.get(current, ())))
            return False

        reported: Set[Tuple[str, str, int]] = set()
        for held, acquired, mod_name, node, description in model.edges:
            if not reaches(acquired, held):
                continue
            mod = project.modules[mod_name]
            key = (held, acquired, getattr(node, "lineno", 0))
            if key in reported:
                continue
            reported.add(key)
            yield project.finding(
                self, mod, node,
                f"lock-order cycle: {description}; another path acquires "
                f"these locks in the opposite order",
            )


# ----------------------------------------------------------------------
# IPC002: blocking / unknown code under a lock
# ----------------------------------------------------------------------
_BLOCKING_CALLS = {"time.sleep"}
_BLOCKING_METHODS = {"join", "result", "wait"}


@register_project
class BlockingUnderLock(ProjectRule):
    rule_id = "IPC002"
    name = "blocking-under-lock"
    category = "concurrency"
    description = (
        "A known-blocking call or an injected callable runs while a "
        "lock is held."
    )

    def visit_project(self, project: Project) -> Iterator[Finding]:
        graph = _graph(project)
        model = _lock_model(project)
        for qualname in sorted(model.acquisitions):
            fn = project.functions[qualname]
            mod = project.modules[fn.module]
            if mod.ctx.is_benchmark:
                continue
            param_sites = {
                id(site.node): site
                for site in graph.callees(qualname)
                if site.is_param
            }
            for held, with_node in model.acquisitions[qualname]:
                for node in _body_walk(with_node):
                    if not isinstance(node, ast.Call):
                        continue
                    site = param_sites.get(id(node))
                    if site is not None:
                        yield project.finding(
                            self, mod, node,
                            f"call to injected callable "
                            f"'{site.callee.split(':', 1)[1]}' while "
                            f"holding {held} — unknown code under a lock",
                        )
                        continue
                    if self._is_blocking(node, mod):
                        yield project.finding(
                            self, mod, node,
                            f"blocking call "
                            f"'{dotted(node.func) or node.func.attr}' "
                            f"while holding {held}",
                        )

    @staticmethod
    def _is_blocking(node: ast.Call, mod: ModuleInfo) -> bool:
        chain = dotted(node.func)
        if chain:
            head = chain.split(".")[0]
            expanded = chain
            if head in mod.imports:
                expanded = ".".join(
                    [mod.imports[head]] + chain.split(".")[1:]
                )
            if expanded in _BLOCKING_CALLS:
                return True
        # zero-argument .join()/.result()/.wait(): thread joins and
        # future waits; the argument gate excludes str.join(iterable)
        return (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _BLOCKING_METHODS
            and not node.args
            and not node.keywords
        )


# ----------------------------------------------------------------------
# IPD001: determinism taint reaching a sink
# ----------------------------------------------------------------------
@register_project
class DeterminismTaintToSink(ProjectRule):
    rule_id = "IPD001"
    name = "determinism-taint"
    category = "determinism"
    description = (
        "A wall-clock / unseeded-RNG value flows (possibly across "
        "calls) into the trace, provenance, or verdict layer."
    )

    def visit_project(self, project: Project) -> Iterator[Finding]:
        from repro.analysis.taint import TaintAnalysis

        taint = TaintAnalysis(project, _graph(project))
        for violation in taint.sink_violations():
            mod = project.modules[violation.module]
            yield project.finding(
                self, mod, violation.node,
                f"nondeterministic value (from {violation.source_hint}) "
                f"reaches determinism-sensitive sink {violation.sink}",
            )


# ----------------------------------------------------------------------
# IPE001: unsynchronized lazy init reachable from a thread entry
# ----------------------------------------------------------------------
@register_project
class EscapedLazyInit(ProjectRule):
    rule_id = "IPE001"
    name = "escaped-lazy-init"
    category = "concurrency"
    description = (
        "Check-then-act lazy initialization of shared state in code "
        "reachable from a thread-pool entry point, with no lock held."
    )

    def visit_project(self, project: Project) -> Iterator[Finding]:
        graph = _graph(project)
        reachable = graph.reachable(graph.thread_entries)
        for qualname in sorted(reachable):
            fn = project.functions.get(qualname)
            if fn is None:
                continue
            if fn.name in ("__init__", "__new__"):
                continue
            if fn.name.endswith("_locked"):
                continue  # repo convention: caller holds the lock
            mod = project.modules[fn.module]
            if mod.ctx.is_benchmark:
                continue
            for node in fn.body_nodes():
                if isinstance(node, ast.If):
                    yield from self._check_lazy_init(
                        project, graph, fn, mod, node
                    )

    def _check_lazy_init(
        self,
        project: Project,
        graph: CallGraph,
        fn: FunctionInfo,
        mod: ModuleInfo,
        if_node: ast.If,
    ) -> Iterator[Finding]:
        target = _lazy_target(if_node.test)
        if target is None:
            return
        (kind, name), polarity = target
        if "lock" in name.lower():
            return
        if kind == "global" and name not in mod.top_level:
            return  # a local can't be shared state
        if polarity == "after":
            # guard-return form: `if self._x is not None: return ...`
            if not any(isinstance(s, ast.Return) for s in if_node.body):
                return
            scope = _statements_after(mod, if_node)
        else:
            scope = if_node.body
        for write in _find_writes(scope, kind, name):
            if _under_lock(mod, write, fn.node):
                continue
            desc = f"self.{name}" if kind == "self" else f"{mod.name}.{name}"
            chain = graph.path(graph.thread_entries, fn.qualname)
            entry = chain[0] if chain else fn.qualname
            yield project.finding(
                self, mod, write,
                f"unsynchronized lazy initialization of {desc} in "
                f"{fn.qualname}, reachable from thread entry {entry}; "
                f"guard the check-then-act with a lock",
            )
            return  # one finding per check-then-act site


def _lazy_target(
    test: ast.AST,
) -> Optional[Tuple[Tuple[str, str], str]]:
    """Classify a lazy-init check.  Returns ``((kind, name), polarity)``
    where polarity says whether the act lives in the if-body or in the
    statements after a guard-return."""
    if isinstance(test, ast.Compare) and len(test.ops) == 1:
        op = test.ops[0]
        left, right = test.left, test.comparators[0]
        if isinstance(op, ast.Is) and _is_none(right):
            key = _store_key(left)
            if key:
                return key, "body"
        if isinstance(op, ast.IsNot) and _is_none(right):
            key = _store_key(left)
            if key:
                return key, "after"
        if isinstance(op, ast.NotIn):
            key = _store_key(right)
            if key:
                return key, "body"
        if isinstance(op, ast.In):
            key = _store_key(right)
            if key:
                return key, "after"
    if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
        key = _store_key(test.operand)
        if key:
            return key, "body"
    return None


def _is_none(node: ast.AST) -> bool:
    return isinstance(node, ast.Constant) and node.value is None


def _store_key(expr: ast.AST) -> Optional[Tuple[str, str]]:
    if (
        isinstance(expr, ast.Attribute)
        and isinstance(expr.value, ast.Name)
        and expr.value.id == "self"
    ):
        return ("self", expr.attr)
    if isinstance(expr, ast.Name):
        return ("global", expr.id)
    return None


def _find_writes(
    statements, kind: str, name: str
) -> Iterator[ast.AST]:
    stack = list(statements)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign)
                else [node.target]
            )
            for target in targets:
                if kind == "self":
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        and target.attr == name
                    ):
                        yield node
                else:
                    if isinstance(target, ast.Name) and target.id == name:
                        yield node
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == name
                    ):
                        yield node
        for child in ast.iter_child_nodes(node):
            if isinstance(
                child,
                (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
                 ast.ClassDef),
            ):
                continue
            stack.append(child)


def _statements_after(mod: ModuleInfo, if_node: ast.If) -> List[ast.AST]:
    parent = mod.ctx.parent(if_node)
    if parent is None:
        return []
    for field_name in ("body", "orelse", "finalbody"):
        block = getattr(parent, field_name, None)
        if isinstance(block, list) and if_node in block:
            return block[block.index(if_node) + 1:]
    return []


def _under_lock(mod: ModuleInfo, node: ast.AST, fn_node: ast.AST) -> bool:
    for ancestor in mod.ctx.ancestors(node):
        if ancestor is fn_node:
            return False
        if isinstance(ancestor, ast.With):
            for item in ancestor.items:
                name = dotted(item.context_expr)
                if name and "lock" in name.lower():
                    return True
    return False
