"""Rule packages; importing this module populates the rule registry."""

from repro.analysis.rules import (
    concurrency,
    contracts,
    determinism,
    interprocedural,
    meta,
    observability,
    performance,
)

__all__ = [
    "concurrency",
    "contracts",
    "determinism",
    "interprocedural",
    "meta",
    "observability",
    "performance",
]
