"""Concurrency rules (CON*).

PR 1's ``verify_batch`` fans verification out to a ThreadPoolExecutor;
the shared caches it touches (``core/verifier.py``, ``core/indexer.py``,
``core/batch.py``) are guarded by hand-maintained locks.  These rules
audit that discipline: locks are only held via ``with``, attributes a
class guards with a lock are guarded at *every* write site, and module
globals are not rebound or mutated from functions.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Set, Tuple

from repro.analysis.linter import (
    Finding,
    LintContext,
    Rule,
    dotted_name,
    register,
)

#: methods that mutate the common mutable containers in place
_MUTATING_METHODS = {
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "setdefault", "add", "discard", "move_to_end", "appendleft",
}


def _self_attr_written(stmt: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
    """Yield (attribute name, node) for every ``self.X`` write in ``stmt``.

    Covers plain/augmented assignment, subscript assignment
    (``self.X[k] = v``), and in-place mutator calls (``self.X.append``).
    """
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = (
                node.targets if isinstance(node, ast.Assign) else [node.target]
            )
            for target in targets:
                base = target
                while isinstance(base, ast.Subscript):
                    base = base.value
                if (
                    isinstance(base, ast.Attribute)
                    and isinstance(base.value, ast.Name)
                    and base.value.id == "self"
                ):
                    yield base.attr, node
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_METHODS
        ):
            receiver = node.func.value
            if (
                isinstance(receiver, ast.Attribute)
                and isinstance(receiver.value, ast.Name)
                and receiver.value.id == "self"
            ):
                yield receiver.attr, node


@register
class LockAcquireRule(Rule):
    rule_id = "CON001"
    name = "lock-acquire-no-with"
    category = "concurrency"
    description = (
        "Calling .acquire() on a lock by hand risks leaking it on an "
        "exception path; hold locks with a `with` block."
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: LintContext) -> Iterator[Finding]:
        if not (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "acquire"
        ):
            return
        receiver = dotted_name(node.func.value)
        if "lock" in receiver.lower() or "sem" in receiver.lower():
            yield self.finding(
                ctx, node,
                f"{receiver}.acquire() called directly; use "
                f"`with {receiver}:` so the lock is released on every path",
            )


@register
class UnguardedSharedWriteRule(Rule):
    rule_id = "CON002"
    name = "unguarded-shared-write"
    category = "concurrency"
    description = (
        "An attribute written under `with <lock>:` anywhere in a class is "
        "lock-guarded shared state; every other write (outside __init__) "
        "must hold the lock too."
    )
    node_types = (ast.ClassDef,)

    def visit(self, node: ast.ClassDef, ctx: LintContext) -> Iterator[Finding]:
        guarded: Set[str] = set()
        #: (attr, write node, method name) for writes outside any lock
        unguarded: List[Tuple[str, ast.AST, str]] = []
        for method in node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            in_init = method.name == "__init__"
            for attr, write in self._attr_writes(method):
                if self._under_lock(write, method):
                    guarded.add(attr)
                elif not in_init:
                    unguarded.append((attr, write, method.name))
        for attr, write, method_name in unguarded:
            if attr in guarded and "lock" not in attr.lower():
                yield self.finding(
                    ctx, write,
                    f"self.{attr} is lock-guarded elsewhere in "
                    f"{node.name} but written without the lock in "
                    f"{method_name}()",
                )

    @staticmethod
    def _attr_writes(method: ast.AST) -> Iterator[Tuple[str, ast.AST]]:
        yield from _self_attr_written(method)

    @staticmethod
    def _under_lock(write: ast.AST, method: ast.AST) -> bool:
        """True when ``write`` sits inside a lock-holding ``with`` in
        ``method`` (resolved structurally, not via parent pointers, so
        the check stays local to the class body)."""
        for candidate in ast.walk(method):
            if not isinstance(candidate, ast.With):
                continue
            holds_lock = any(
                "lock" in dotted_name(item.context_expr).lower()
                for item in candidate.items
            )
            if holds_lock and any(
                sub is write for sub in ast.walk(candidate)
            ):
                return True
        return False


@register
class GlobalMutationRule(Rule):
    rule_id = "CON003"
    name = "global-mutation"
    category = "concurrency"
    description = (
        "Rebinding a module global from a function (or mutating a "
        "lowercase module-level container) is shared cross-thread state "
        "with no lock and no seed; pass state explicitly."
    )
    node_types = (ast.Module,)

    def visit(self, node: ast.Module, ctx: LintContext) -> Iterator[Finding]:
        module_mutables = self._module_mutables(node)
        for func in ast.walk(node):
            if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            declared: Set[str] = set()
            for stmt in func.body:
                for sub in ast.walk(stmt):
                    if isinstance(sub, ast.Global):
                        declared.update(sub.names)
            if not declared and not module_mutables:
                continue
            yield from self._function_findings(
                ctx, func, declared, module_mutables
            )

    @staticmethod
    def _module_mutables(node: ast.Module) -> Dict[str, ast.AST]:
        """Module-level lowercase names bound to mutable containers.

        ALL_CAPS names are exempt: registry/constant convention (mutated
        once at import time by decorators, read-only afterwards).
        """
        mutables: Dict[str, ast.AST] = {}
        for stmt in node.body:
            if not isinstance(stmt, (ast.Assign, ast.AnnAssign)):
                continue
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            value = stmt.value
            is_container = isinstance(
                value, (ast.Dict, ast.List, ast.Set)
            ) or (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in ("dict", "list", "set", "defaultdict")
            )
            if not is_container:
                continue
            for target in targets:
                if isinstance(target, ast.Name):
                    name = target.id
                    if name.lstrip("_") and not name.lstrip("_").isupper():
                        mutables[name] = stmt
        return mutables

    def _function_findings(
        self,
        ctx: LintContext,
        func: ast.AST,
        declared: Set[str],
        module_mutables: Dict[str, ast.AST],
    ) -> Iterator[Finding]:
        local_names = {
            sub.id
            for sub in ast.walk(func)
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Store)
        } - declared
        for sub in ast.walk(func):
            if isinstance(sub, (ast.Assign, ast.AugAssign)):
                targets = (
                    sub.targets if isinstance(sub, ast.Assign) else [sub.target]
                )
                for target in targets:
                    base = target
                    while isinstance(base, ast.Subscript):
                        base = base.value
                    if not isinstance(base, ast.Name):
                        continue
                    if base.id in declared:
                        yield self.finding(
                            ctx, sub,
                            f"global {base.id} rebound inside "
                            f"{func.name}(); globals are unshared, "
                            "unseeded cross-thread state",
                        )
                    elif (
                        isinstance(target, ast.Subscript)
                        and base.id in module_mutables
                        and base.id not in local_names
                    ):
                        yield self.finding(
                            ctx, sub,
                            f"module-level container {base.id} mutated "
                            f"inside {func.name}() without a lock",
                        )
            elif (
                isinstance(sub, ast.Call)
                and isinstance(sub.func, ast.Attribute)
                and sub.func.attr in _MUTATING_METHODS
                and isinstance(sub.func.value, ast.Name)
                and sub.func.value.id in module_mutables
                and sub.func.value.id not in local_names
            ):
                yield self.finding(
                    ctx, sub,
                    f"module-level container {sub.func.value.id} mutated "
                    f"inside {func.name}() without a lock",
                )
