"""Determinism rules (DET*).

DESIGN.md replaces the paper's ChatGPT calls with a seeded
``SimulatedLLM`` precisely so every run is reproducible; these rules
keep hidden entropy sources — unseeded RNGs, wall-clock reads, set
iteration order — out of the tree.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.linter import (
    Finding,
    LintContext,
    Rule,
    dotted_name,
    register,
)

#: stdlib ``random`` module-level functions that draw from the hidden
#: global RNG (shared, unseeded process state)
_GLOBAL_RANDOM_FNS = {
    "random", "randint", "randrange", "choice", "choices", "shuffle",
    "sample", "uniform", "gauss", "normalvariate", "betavariate",
    "seed", "getrandbits", "triangular",
}

#: legacy numpy global-RNG entry points (``np.random.<fn>``)
_NUMPY_GLOBAL_FNS = {
    "rand", "randn", "randint", "random", "choice", "shuffle", "seed",
    "permutation", "normal", "uniform", "random_sample",
}

_WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns",
    "datetime.now", "datetime.utcnow", "datetime.today",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today", "date.today",
}


@register
class UnseededRngRule(Rule):
    rule_id = "DET001"
    name = "unseeded-rng"
    category = "determinism"
    description = (
        "RNGs must be constructed with an explicit seed; the module-level "
        "random/np.random entry points draw from hidden global state."
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: LintContext) -> Iterator[Finding]:
        name = dotted_name(node.func)
        if not name:
            return
        if name in ("random.Random", "random.SystemRandom") and not (
            node.args or node.keywords
        ):
            yield self.finding(
                ctx, node, f"{name}() constructed without an explicit seed"
            )
        elif name.endswith("random.default_rng") and not (
            node.args or node.keywords
        ):
            yield self.finding(
                ctx, node, f"{name}() called without an explicit seed"
            )
        elif name.startswith("random.") and name.count(".") == 1:
            fn = name.split(".", 1)[1]
            if fn in _GLOBAL_RANDOM_FNS:
                yield self.finding(
                    ctx, node,
                    f"{name}() uses the hidden module-level RNG; thread a "
                    "seeded random.Random instance instead",
                )
        elif (
            name.startswith(("np.random.", "numpy.random."))
            and name.rsplit(".", 1)[1] in _NUMPY_GLOBAL_FNS
        ):
            yield self.finding(
                ctx, node,
                f"{name}() uses numpy's legacy global RNG; use "
                "np.random.default_rng(seed)",
            )


@register
class WallClockRule(Rule):
    rule_id = "DET002"
    name = "wall-clock"
    category = "determinism"
    description = (
        "Wall-clock reads (time.time, datetime.now) leak real time into "
        "outputs; only benchmark modules may time themselves, and then "
        "with time.perf_counter."
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: LintContext) -> Iterator[Finding]:
        if ctx.is_benchmark:
            return
        name = dotted_name(node.func)
        if name in _WALL_CLOCK_CALLS:
            yield self.finding(
                ctx, node,
                f"{name}() reads the wall clock in a non-benchmark module",
            )


@register
class SetIterationRule(Rule):
    rule_id = "DET003"
    name = "set-iteration-order"
    category = "determinism"
    description = (
        "Iterating a set feeds its arbitrary (hash-randomized across "
        "processes) order into downstream state; wrap in sorted()."
    )
    node_types = (ast.For, ast.comprehension, ast.Call)

    def _is_set_expr(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        if isinstance(node, ast.For) and self._is_set_expr(node.iter):
            yield self.finding(
                ctx, node.iter,
                "for-loop iterates a set in arbitrary order; use "
                "sorted(...) for a deterministic order",
            )
        elif isinstance(node, ast.comprehension) and self._is_set_expr(
            node.iter
        ):
            yield self.finding(
                ctx, node.iter,
                "comprehension iterates a set in arbitrary order; use "
                "sorted(...) for a deterministic order",
            )
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in ("list", "tuple", "enumerate")
            and node.args
            and self._is_set_expr(node.args[0])
        ):
            yield self.finding(
                ctx, node,
                f"{node.func.id}() materializes a set in arbitrary order; "
                "use sorted(...) instead",
            )


@register
class PopitemRule(Rule):
    rule_id = "DET004"
    name = "popitem"
    category = "determinism"
    description = (
        "dict.popitem() with no argument pops an implementation-defined "
        "end; spell the direction out (OrderedDict.popitem(last=...)) or "
        "pop an explicit key."
    )
    node_types = (ast.Call,)

    def visit(self, node: ast.Call, ctx: LintContext) -> Iterator[Finding]:
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "popitem"
            and not node.args
            and not node.keywords
        ):
            yield self.finding(
                ctx, node,
                "popitem() without an explicit direction; pass last=True/"
                "False (OrderedDict) or pop a named key",
            )
