"""Contract rules (CTR*).

The paper's ``verify(g, x)`` contract is a closed ternary: every
verifier maps into ``Verdict.{VERIFIED, REFUTED, NOT_RELATED}`` and
every consumer must handle all three.  These rules enforce that, plus
two generic correctness contracts (no float ``==`` in scoring code, no
mutable default arguments) and one observability contract (no silently
swallowed exceptions).
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.analysis.linter import (
    Finding,
    LintContext,
    Rule,
    dotted_name,
    register,
)

_VERDICT_MEMBERS = {"VERIFIED", "REFUTED", "NOT_RELATED"}


def _verdict_member(node: ast.AST) -> Optional[str]:
    """'VERIFIED' for an expression like ``Verdict.VERIFIED``, else None."""
    name = dotted_name(node)
    if "." in name:
        prefix, member = name.rsplit(".", 1)
        if prefix.split(".")[-1] == "Verdict" and member in _VERDICT_MEMBERS:
            return member
    return None


def _own_nodes(func: ast.AST) -> Iterator[ast.AST]:
    """Walk ``func`` without descending into nested function defs."""
    stack: List[ast.AST] = list(ast.iter_child_nodes(func))
    while stack:
        node = stack.pop()
        yield node
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            stack.extend(ast.iter_child_nodes(node))


@register
class VerdictReturnRule(Rule):
    rule_id = "CTR001"
    name = "verdict-return-type"
    category = "contracts"
    description = (
        "A function annotated -> Verdict must return Verdict members on "
        "every path — not ints, strings, or an implicit None."
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        if node.returns is None:
            return
        annotation = ast.unparse(node.returns)
        if "Verdict" not in annotation:
            return
        allows_none = "Optional" in annotation or "None" in annotation
        for sub in _own_nodes(node):
            if not isinstance(sub, ast.Return):
                continue
            value = sub.value
            if value is None or (
                isinstance(value, ast.Constant) and value.value is None
            ):
                if not allows_none:
                    yield self.finding(
                        ctx, sub,
                        f"{node.name}() is annotated -> {annotation} but "
                        "returns None; return an explicit Verdict member",
                    )
            elif isinstance(value, ast.Constant):
                yield self.finding(
                    ctx, sub,
                    f"{node.name}() is annotated -> {annotation} but "
                    f"returns the bare constant {value.value!r}; return a "
                    "Verdict member",
                )


@register
class VerdictExhaustivenessRule(Rule):
    rule_id = "CTR002"
    name = "verdict-exhaustiveness"
    category = "contracts"
    description = (
        "A dispatch over Verdict (match statement, or an if/elif chain "
        "testing two or more members) must cover all three members or "
        "carry an explicit else/wildcard."
    )
    node_types = (ast.Match, ast.If)

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        if isinstance(node, ast.Match):
            yield from self._visit_match(node, ctx)
        else:
            yield from self._visit_if(node, ctx)

    def _visit_match(self, node: ast.Match, ctx: LintContext) -> Iterator[Finding]:
        covered: Set[str] = set()
        verdict_cases = 0
        for case in node.cases:
            pattern = case.pattern
            if isinstance(pattern, ast.MatchValue):
                member = _verdict_member(pattern.value)
                if member is not None:
                    covered.add(member)
                    verdict_cases += 1
            elif isinstance(pattern, ast.MatchAs) and pattern.pattern is None:
                return  # wildcard `case _:` — exhaustive by construction
            elif isinstance(pattern, ast.MatchOr):
                for alt in pattern.patterns:
                    if isinstance(alt, ast.MatchValue):
                        member = _verdict_member(alt.value)
                        if member is not None:
                            covered.add(member)
                            verdict_cases += 1
        if verdict_cases and covered != _VERDICT_MEMBERS:
            missing = ", ".join(sorted(_VERDICT_MEMBERS - covered))
            yield self.finding(
                ctx, node,
                f"match over Verdict misses {missing} and has no "
                "wildcard case",
            )

    @staticmethod
    def _chain_test(test: ast.AST) -> Optional[Tuple[str, str]]:
        """(subject dump, member) when ``test`` is `x is Verdict.M`."""
        if not (
            isinstance(test, ast.Compare)
            and len(test.ops) == 1
            and isinstance(test.ops[0], (ast.Is, ast.Eq))
            and len(test.comparators) == 1
        ):
            return None
        left, right = test.left, test.comparators[0]
        member = _verdict_member(right)
        subject = left
        if member is None:
            member = _verdict_member(left)
            subject = right
        if member is None:
            return None
        return ast.dump(subject), member

    def _visit_if(self, node: ast.If, ctx: LintContext) -> Iterator[Finding]:
        parent = ctx.parent(node)
        if (
            isinstance(parent, ast.If)
            and len(parent.orelse) == 1
            and parent.orelse[0] is node
        ):
            return  # an elif arm; the chain head reports
        first = self._chain_test(node.test)
        if first is None:
            return
        subject, member = first
        covered = {member}
        tests = 1
        current: ast.If = node
        while len(current.orelse) == 1 and isinstance(current.orelse[0], ast.If):
            current = current.orelse[0]
            step = self._chain_test(current.test)
            if step is None or step[0] != subject:
                return  # mixed chain; not a pure Verdict dispatch
            covered.add(step[1])
            tests += 1
        if current.orelse:
            return  # explicit else handles the remainder
        if tests >= 2 and covered != _VERDICT_MEMBERS:
            missing = ", ".join(sorted(_VERDICT_MEMBERS - covered))
            yield self.finding(
                ctx, node,
                f"if/elif chain over Verdict misses {missing} and has no "
                "else; handle the remaining verdicts explicitly",
            )


@register
class FloatEqualityRule(Rule):
    rule_id = "CTR003"
    name = "float-equality"
    category = "contracts"
    description = (
        "Scores, margins, and trust weights are floats; == / != on them "
        "is order-of-operations-fragile. Compare with a tolerance "
        "(math.isclose) or an inequality."
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        float_names = self._infer_float_locals(node)
        for sub in _own_nodes(node):
            if not isinstance(sub, ast.Compare):
                continue
            if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in sub.ops):
                continue
            sides = [sub.left, *sub.comparators]
            if any(self._is_floaty(side, float_names) for side in sides):
                yield self.finding(
                    ctx, sub,
                    "float equality comparison; use math.isclose(...) or "
                    "an inequality",
                )

    def _infer_float_locals(self, func: ast.AST) -> Set[str]:
        """Names assigned (transitively) from float literals / divisions."""
        float_names: Set[str] = set()
        assignments: List[Tuple[str, ast.AST]] = []
        for sub in _own_nodes(func):
            if isinstance(sub, ast.Assign):
                for target in sub.targets:
                    if isinstance(target, ast.Name):
                        assignments.append((target.id, sub.value))
            elif isinstance(sub, (ast.AugAssign, ast.AnnAssign)):
                if isinstance(sub.target, ast.Name) and sub.value is not None:
                    assignments.append((sub.target.id, sub.value))
        for _ in range(10):  # fixed-point over at most a short chain
            before = len(float_names)
            for name, value in assignments:
                if self._is_floaty(value, float_names):
                    float_names.add(name)
            if len(float_names) == before:
                break
        return float_names

    def _is_floaty(self, expr: ast.AST, float_names: Set[str]) -> bool:
        if isinstance(expr, ast.Constant):
            return isinstance(expr.value, float)
        if isinstance(expr, ast.Name):
            return expr.id in float_names
        if isinstance(expr, ast.BinOp):
            if isinstance(expr.op, ast.Div):
                return True
            return self._is_floaty(expr.left, float_names) or self._is_floaty(
                expr.right, float_names
            )
        if isinstance(expr, ast.UnaryOp):
            return self._is_floaty(expr.operand, float_names)
        if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Name):
            return expr.func.id == "float"
        return False


@register
class MutableDefaultRule(Rule):
    rule_id = "CTR004"
    name = "mutable-default-arg"
    category = "contracts"
    description = (
        "A mutable default ([] / {} / set()) is created once and shared "
        "across calls (and threads); default to None and construct inside."
    )
    node_types = (ast.FunctionDef, ast.AsyncFunctionDef)

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None
        ]
        for default in defaults:
            if isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set", "defaultdict")
            ):
                yield self.finding(
                    ctx, default,
                    f"mutable default argument in {node.name}(); use None "
                    "and construct inside the body",
                )


@register
class SilentExceptRule(Rule):
    rule_id = "CTR005"
    name = "silent-except"
    category = "contracts"
    description = (
        "A bare except, or a broad except whose body only passes, "
        "swallows failures the verdict pipeline should surface; catch "
        "the specific exception or handle/re-raise."
    )
    node_types = (ast.ExceptHandler,)

    _BROAD = {"Exception", "BaseException"}

    def visit(self, node: ast.ExceptHandler, ctx: LintContext) -> Iterator[Finding]:
        if node.type is None:
            yield self.finding(
                ctx, node,
                "bare except: catches everything including KeyboardInterrupt;"
                " name the exception type",
            )
            return
        names = []
        if isinstance(node.type, (ast.Name, ast.Attribute)):
            names = [dotted_name(node.type)]
        elif isinstance(node.type, ast.Tuple):
            names = [dotted_name(el) for el in node.type.elts]
        if not any(name.split(".")[-1] in self._BROAD for name in names):
            return
        if all(self._is_noop(stmt) for stmt in node.body):
            yield self.finding(
                ctx, node,
                "broad except swallows the failure without re-raising, "
                "returning, or logging",
            )

    @staticmethod
    def _is_noop(stmt: ast.AST) -> bool:
        if isinstance(stmt, (ast.Pass, ast.Continue, ast.Break)):
            return True
        return isinstance(stmt, ast.Expr) and isinstance(
            stmt.value, ast.Constant
        )
