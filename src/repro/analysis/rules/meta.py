"""META001: the linter auditing its own suppressions.

A ``repro-lint: disable=RULE`` pragma is a standing debt: it asserts
"this rule fires here and we accept that".  When the offending code is
later fixed, or the rule is renamed or retired, the pragma silently
stops suppressing anything — and worse, keeps suppressing the *next*
genuine finding on that line.  META001 flags:

* pragmas naming a rule id the engine does not know;
* line pragmas for rules that produce no raw (pre-suppression) finding
  on that line;
* file pragmas for rules that produce no raw finding anywhere in the
  file.

Liveness is judged against :attr:`Project.file_findings`, which the
linter populates with raw findings from the per-file phase **and** from
every whole-program rule that ran before this one — META001 sorts last
in the registry, so a pragma suppressing IPC002 is correctly seen as
live.  META001 does not audit pragmas naming itself (a self-referential
suppression can never be proven live or stale).
"""

from __future__ import annotations

import ast  # noqa: F401  (ProjectRule contract)
from typing import Iterator

from repro.analysis.linter import (
    Finding,
    ProjectRule,
    _PRAGMA_RE,
    known_rule_ids,
    register_project,
)
from repro.analysis.project import Project


@register_project
class StalePragma(ProjectRule):
    rule_id = "META001"
    name = "stale-pragma"
    category = "meta"
    description = (
        "A repro-lint suppression pragma names an unknown rule or no "
        "longer suppresses anything."
    )

    def visit_project(self, project: Project) -> Iterator[Finding]:
        known = set(known_rule_ids())
        for name in sorted(project.modules):
            mod = project.modules[name]
            raw = project.file_findings.get(mod.rel_path, [])
            fired_at_line = {(f.rule_id, f.line) for f in raw}
            fired_in_file = {f.rule_id for f in raw}
            for lineno, text in enumerate(mod.ctx.lines, start=1):
                match = _PRAGMA_RE.search(text)
                if match is None:
                    continue
                kind, raw_ids = match.groups()
                ids = sorted(
                    part.strip().upper()
                    for part in raw_ids.split(",")
                    if part.strip()
                )
                for rule_id in ids:
                    if rule_id == self.rule_id:
                        continue
                    if rule_id not in known:
                        yield Finding(
                            rule_id=self.rule_id,
                            path=mod.rel_path,
                            line=lineno,
                            col=0,
                            message=(
                                f"pragma disables unknown rule "
                                f"{rule_id}"
                            ),
                            snippet=mod.ctx.line_text(lineno),
                        )
                    elif kind == "disable" and (
                        (rule_id, lineno) not in fired_at_line
                    ):
                        yield Finding(
                            rule_id=self.rule_id,
                            path=mod.rel_path,
                            line=lineno,
                            col=0,
                            message=(
                                f"stale pragma: {rule_id} no longer "
                                f"fires on this line"
                            ),
                            snippet=mod.ctx.line_text(lineno),
                        )
                    elif kind == "disable-file" and (
                        rule_id not in fired_in_file
                    ):
                        yield Finding(
                            rule_id=self.rule_id,
                            path=mod.rel_path,
                            line=lineno,
                            col=0,
                            message=(
                                f"stale pragma: {rule_id} no longer "
                                f"fires anywhere in this file"
                            ),
                            snippet=mod.ctx.line_text(lineno),
                        )
