"""Performance rules (PERF*).

The sealed index representation exists so scoring runs as vectorized
numpy passes over flat contiguous arrays (see
:mod:`repro.index.inverted`).  A per-element Python loop over those
arrays — or over another index's postings dict — silently re-introduces
the interpreted inner loop the sealed form was built to eliminate, and
such regressions don't fail tests (results stay identical); they only
show up as a collapsed BENCH delta much later.  PERF001 catches them at
lint time, scoped to ``src/repro/index/`` where the kernels live.
"""

from __future__ import annotations

import ast
from pathlib import PurePosixPath
from typing import Iterator, List

from repro.analysis.linter import (
    Finding,
    LintContext,
    Rule,
    dotted_name,
    register,
)

#: the sealed form's flat contiguous arrays (CSR postings layout);
#: element-wise iteration over any of these belongs in a numpy kernel
_SEALED_ARRAYS = {"doc_idx", "tf_flat", "idf_flat", "tok_start"}

#: dict-view calls that still iterate the underlying postings
_DICT_VIEWS = {"items", "keys", "values"}


def _in_index_package(rel_path: str) -> bool:
    parts = PurePosixPath(rel_path.replace("\\", "/")).parts
    return any(
        parts[i:i + 2] == ("repro", "index") for i in range(len(parts) - 1)
    )


def _iterated_exprs(node: ast.AST) -> List[ast.expr]:
    """The expressions a loop/comprehension iterates element-wise."""
    if isinstance(node, ast.For):
        return [node.iter]
    return [gen.iter for gen in node.generators]


def _loop_target(expr: ast.expr) -> ast.expr:
    """Strip a trailing ``.items()`` / ``.keys()`` / ``.values()`` call
    so ``for t in index._postings.items()`` resolves to the postings
    attribute itself."""
    if (
        isinstance(expr, ast.Call)
        and not expr.args
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in _DICT_VIEWS
    ):
        return expr.func.value
    return expr


@register
class SealedPostingsLoopRule(Rule):
    rule_id = "PERF001"
    name = "postings-python-loop"
    category = "performance"
    description = (
        "A per-element Python loop over a sealed index's flat postings "
        "arrays (doc_idx/tf_flat/idf_flat/tok_start), or over another "
        "object's _postings dict, defeats the vectorized sealed read "
        "path; use the numpy kernels (or slice views) instead.  Scoped "
        "to repro/index/, where the kernels live."
    )
    node_types = (
        ast.For, ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp,
    )

    def visit(self, node: ast.AST, ctx: LintContext) -> Iterator[Finding]:
        if not _in_index_package(ctx.rel_path):
            return
        for expr in _iterated_exprs(node):
            target = _loop_target(expr)
            if not isinstance(target, ast.Attribute):
                continue
            if target.attr in _SEALED_ARRAYS:
                yield self.finding(
                    ctx, node,
                    f"per-element loop over sealed array "
                    f"{dotted_name(target)}; score with the vectorized "
                    "kernel or a numpy slice, not a Python loop",
                )
            elif target.attr == "_postings" and not (
                isinstance(target.value, ast.Name)
                and target.value.id == "self"
            ):
                # an index may walk its own write-path dict (compact,
                # seal); reaching into ANOTHER object's postings per
                # element is the slow path the sealed kernels replace
                yield self.finding(
                    ctx, node,
                    f"per-element loop over {dotted_name(target)}; "
                    "consume the sealed arrays (search_matrix / "
                    "postings slice views) instead of walking another "
                    "index's postings dict",
                )
