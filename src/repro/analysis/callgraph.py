"""A conservative call graph over the project model.

Resolution is name-based and deliberately over-approximate — the
interprocedural rules need "may call", never "must call":

* ``name(...)`` resolves through the module's import map, its own
  top-level definitions, enclosing-function parameters (recorded as
  ``param:<name>`` so the lock rules can flag injected callables), and
  nested definitions;
* ``self.method(...)`` resolves through the enclosing class's
  project-visible base chain (method resolution order, breadth-first);
* ``obj.method(...)`` with an unknown receiver falls back to **every**
  project method of that name (dynamic-dispatch fallback) — imprecise,
  but it is what lets the escape analysis follow a batch worker through
  ``Combiner.search`` into whichever index actually answers;
* ``Class(...)`` resolves to ``Class.__init__``.

Unresolved calls are kept as ``external:<dotted>`` edges so rules can
still reason about known-blocking stdlib primitives.

The graph also classifies **thread entry points**: callables handed to
``threading.Thread(target=...)`` or to a ``ThreadPoolExecutor``'s
``submit``/``map``.  Process pools are deliberately excluded — workers
in another address space cannot race on this process's memory, which is
exactly the distinction the escape analysis needs.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.analysis.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
)


@dataclass(frozen=True)
class CallSite:
    """One call expression, resolved as far as names allow."""

    caller: str              #: qualname of the enclosing function
    callee: str              #: qualname, ``external:<dotted>``, or ``param:<n>``
    node: ast.Call
    module: str
    via_fallback: bool = False

    @property
    def is_external(self) -> bool:
        return self.callee.startswith("external:")

    @property
    def is_param(self) -> bool:
        return self.callee.startswith("param:")


def dotted(node: ast.AST) -> str:
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return ""


class CallGraph:
    """Call sites per function plus the thread-entry classification."""

    def __init__(self, project: Project) -> None:
        self.project = project
        self.calls: Dict[str, List[CallSite]] = {}
        self.thread_entries: List[str] = []
        self._process_factories = self._find_process_factories()
        for qualname in sorted(project.functions):
            self.calls[qualname] = self._resolve_function(
                project.functions[qualname]
            )
        self.thread_entries = sorted(set(self._find_thread_entries()))

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def callees(self, qualname: str) -> List[CallSite]:
        return self.calls.get(qualname, [])

    def reachable(self, roots: Sequence[str]) -> Set[str]:
        """Every project function transitively callable from ``roots``."""
        seen: Set[str] = set()
        queue = [r for r in roots if r in self.calls]
        while queue:
            current = queue.pop()
            if current in seen:
                continue
            seen.add(current)
            for site in self.calls.get(current, ()):
                if site.callee in self.calls and site.callee not in seen:
                    queue.append(site.callee)
        return seen

    def path(self, roots: Sequence[str], target: str) -> List[str]:
        """A deterministic shortest call chain root -> ... -> target
        (empty when unreachable); used to explain findings."""
        parents: Dict[str, Optional[str]] = {}
        queue: List[str] = []
        for root in sorted(roots):
            if root in self.calls and root not in parents:
                parents[root] = None
                queue.append(root)
        index = 0
        while index < len(queue):
            current = queue[index]
            index += 1
            if current == target:
                chain: List[str] = []
                walk: Optional[str] = current
                while walk is not None:
                    chain.append(walk)
                    walk = parents[walk]
                return list(reversed(chain))
            for site in self.calls.get(current, ()):
                callee = site.callee
                if callee in self.calls and callee not in parents:
                    parents[callee] = current
                    queue.append(callee)
        return []

    # ------------------------------------------------------------------
    # resolution
    # ------------------------------------------------------------------
    def _resolve_function(self, fn: FunctionInfo) -> List[CallSite]:
        mod = self.project.modules[fn.module]
        params = set(fn.param_names())
        sites: List[CallSite] = []
        for node in fn.body_nodes():
            if isinstance(node, ast.Call):
                sites.extend(self._resolve_call(fn, mod, params, node))
        sites.sort(key=lambda s: (s.node.lineno, s.node.col_offset, s.callee))
        return sites

    def _resolve_call(
        self,
        fn: FunctionInfo,
        mod: ModuleInfo,
        params: Set[str],
        node: ast.Call,
    ) -> Iterator[CallSite]:
        func = node.func
        if isinstance(func, ast.Name):
            yield from self._resolve_name_call(fn, mod, params, node, func.id)
        elif isinstance(func, ast.Attribute):
            yield from self._resolve_attr_call(fn, mod, node, func)
        elif isinstance(func, ast.Lambda):
            # immediately-invoked lambda: resolved as its own symbol
            yield CallSite(
                caller=fn.qualname,
                callee=f"{fn.qualname}.<lambda:{func.lineno}>",
                node=node,
                module=mod.name,
            )
        else:
            yield CallSite(
                caller=fn.qualname,
                callee="external:<dynamic>",
                node=node,
                module=mod.name,
            )

    def _resolve_name_call(
        self,
        fn: FunctionInfo,
        mod: ModuleInfo,
        params: Set[str],
        node: ast.Call,
        name: str,
    ) -> Iterator[CallSite]:
        nested = f"{fn.qualname}.{name}"
        if nested in self.project.functions:
            yield self._site(fn, mod, node, nested)
            return
        if name in params:
            yield CallSite(
                caller=fn.qualname,
                callee=f"param:{name}",
                node=node,
                module=mod.name,
            )
            return
        target = mod.imports.get(name) or mod.top_level.get(name)
        if target is not None:
            resolved = self._resolve_dotted(target)
            if resolved is not None:
                yield self._site(fn, mod, node, resolved)
                return
            yield self._site(fn, mod, node, f"external:{target}")
            return
        yield self._site(fn, mod, node, f"external:{name}")

    def _resolve_attr_call(
        self,
        fn: FunctionInfo,
        mod: ModuleInfo,
        node: ast.Call,
        func: ast.Attribute,
    ) -> Iterator[CallSite]:
        chain = dotted(func)
        attr = func.attr
        if chain.startswith("self.") and fn.class_name is not None:
            cls = self.project.classes.get(f"{mod.name}.{fn.class_name}")
            if cls is not None and chain.count(".") == 1:
                resolved = self.project.resolve_method(cls, attr)
                if resolved is not None:
                    yield self._site(fn, mod, node, resolved.qualname)
                    return
            yield from self._fallback(fn, mod, node, attr)
            return
        if chain:
            head = chain.split(".")[0]
            target = mod.imports.get(head)
            if target is not None:
                rest = chain.split(".")[1:]
                resolved = self._resolve_dotted(
                    ".".join([target] + rest)
                )
                if resolved is not None:
                    yield self._site(fn, mod, node, resolved)
                    return
                yield self._site(
                    fn, mod, node,
                    f"external:{'.'.join([target] + rest)}",
                )
                return
        yield from self._fallback(fn, mod, node, attr)

    def _fallback(
        self,
        fn: FunctionInfo,
        mod: ModuleInfo,
        node: ast.Call,
        method_name: str,
    ) -> Iterator[CallSite]:
        """Dynamic-dispatch fallback: an unknown receiver may be any
        project class defining ``method_name``."""
        candidates = self.project.methods_by_name.get(method_name, ())
        if not candidates:
            yield self._site(fn, mod, node, f"external:.{method_name}")
            return
        for candidate in candidates:
            yield CallSite(
                caller=fn.qualname,
                callee=candidate.qualname,
                node=node,
                module=mod.name,
                via_fallback=True,
            )

    def _resolve_dotted(self, target: str) -> Optional[str]:
        """Map a fully expanded dotted name to a project symbol:
        function, ``Class`` (-> ``__init__``), or ``Class.method``."""
        if target in self.project.functions:
            return target
        if target in self.project.classes:
            init = self.project.classes[target].methods.get("__init__")
            return init.qualname if init is not None else target
        head, _, tail = target.rpartition(".")
        if head in self.project.classes and tail:
            cls = self.project.classes[head]
            resolved = self.project.resolve_method(cls, tail)
            if resolved is not None:
                return resolved.qualname
        return None

    def _site(
        self, fn: FunctionInfo, mod: ModuleInfo, node: ast.Call, callee: str
    ) -> CallSite:
        return CallSite(
            caller=fn.qualname, callee=callee, node=node, module=mod.name
        )

    # ------------------------------------------------------------------
    # thread entry points
    # ------------------------------------------------------------------
    def _find_process_factories(self) -> Set[str]:
        """Project functions that hand out process pools (classified by
        a ``Process``-flavoured return annotation or name)."""
        factories: Set[str] = set()
        for qualname in sorted(self.project.functions):
            fn = self.project.functions[qualname]
            returns = getattr(fn.node, "returns", None)
            rendered = ""
            if returns is not None:
                rendered = dotted(returns) or getattr(returns, "value", "")
                rendered = str(rendered)
            if "Process" in rendered or "process_pool" in fn.name:
                factories.add(qualname)
        return factories

    def _executor_kinds(self, fn: FunctionInfo) -> Dict[str, str]:
        """Local name -> 'thread' | 'process' for executor variables
        bound in ``fn`` (constructor calls, ``with ... as`` aliases, and
        project pool-factory calls)."""
        kinds: Dict[str, str] = {}
        mod = self.project.modules[fn.module]

        def classify_call(call: ast.Call) -> Optional[str]:
            name = dotted(call.func)
            if not name:
                return None
            head = name.split(".")[0]
            expanded = name
            if head in mod.imports:
                expanded = ".".join(
                    [mod.imports[head]] + name.split(".")[1:]
                )
            leaf = expanded.split(".")[-1]
            if leaf == "ThreadPoolExecutor":
                return "thread"
            if leaf == "ProcessPoolExecutor":
                return "process"
            resolved = None
            if isinstance(call.func, ast.Name):
                target = mod.imports.get(call.func.id) or mod.top_level.get(
                    call.func.id
                )
                if target is not None:
                    resolved = self._resolve_dotted(target) or target
            if resolved is not None and resolved in self._process_factories:
                return "process"
            return None

        for node in fn.body_nodes():
            if isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                kind = classify_call(node.value)
                if kind is not None:
                    for target in node.targets:
                        if isinstance(target, ast.Name):
                            kinds[target.id] = kind
            elif isinstance(node, ast.With):
                for item in node.items:
                    if (
                        isinstance(item.context_expr, ast.Call)
                        and item.optional_vars is not None
                        and isinstance(item.optional_vars, ast.Name)
                    ):
                        kind = classify_call(item.context_expr)
                        if kind is not None:
                            kinds[item.optional_vars.id] = kind
        return kinds

    def _callable_ref(
        self, fn: FunctionInfo, mod: ModuleInfo, node: ast.AST
    ) -> Optional[str]:
        """Resolve a callable *reference* (not call) to a qualname."""
        if isinstance(node, ast.Lambda):
            return f"{fn.qualname}.<lambda:{node.lineno}>"
        if isinstance(node, ast.Name):
            nested = f"{fn.qualname}.{node.id}"
            if nested in self.project.functions:
                return nested
            target = mod.imports.get(node.id) or mod.top_level.get(node.id)
            if target is not None:
                return self._resolve_dotted(target)
            return None
        if isinstance(node, ast.Attribute):
            chain = dotted(node)
            if chain.startswith("self.") and fn.class_name is not None:
                cls = self.project.classes.get(
                    f"{mod.name}.{fn.class_name}"
                )
                if cls is not None and chain.count(".") == 1:
                    resolved = self.project.resolve_method(cls, node.attr)
                    if resolved is not None:
                        return resolved.qualname
            candidates = self.project.methods_by_name.get(node.attr, ())
            if len(candidates) == 1:
                return candidates[0].qualname
        return None

    def _find_thread_entries(self) -> Iterator[str]:
        for qualname in sorted(self.project.functions):
            fn = self.project.functions[qualname]
            mod = self.project.modules[fn.module]
            kinds = self._executor_kinds(fn)
            for node in fn.body_nodes():
                if not isinstance(node, ast.Call):
                    continue
                func = node.func
                # threading.Thread(target=worker)
                chain = dotted(func)
                head = chain.split(".")[0] if chain else ""
                expanded = chain
                if head and head in mod.imports:
                    expanded = ".".join(
                        [mod.imports[head]] + chain.split(".")[1:]
                    )
                if expanded.endswith("Thread") and "threading" in expanded:
                    for kw in node.keywords:
                        if kw.arg == "target":
                            ref = self._callable_ref(fn, mod, kw.value)
                            if ref is not None:
                                yield ref
                    continue
                # pool.submit(worker, ...) / pool.map(worker, ...)
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in ("submit", "map")
                    and isinstance(func.value, ast.Name)
                ):
                    kind = kinds.get(func.value.id)
                    if kind != "thread":
                        continue
                    if node.args:
                        ref = self._callable_ref(fn, mod, node.args[0])
                        if ref is not None:
                            yield ref
