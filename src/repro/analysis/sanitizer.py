"""An Eraser-style lockset race sanitizer (dynamic counterpart to IPE001).

The static escape analysis reasons about what *may* race; this module
watches what the code *actually does*.  It is deliberately
timing-independent: the classic lockset algorithm (Savage et al.,
"Eraser") flags a field as racy the moment two threads have touched it
with no lock in common — no unlucky interleaving required, so a racy
test fixture fails **reliably**, not one run in fifty.

How it works:

* :func:`enable` replaces ``threading.Lock`` / ``threading.RLock`` with
  factories that hand out *tracked* proxies to code whose module name
  matches the configured prefixes (default: ``repro``).  Acquire /
  release maintain a per-thread **lockset**; stdlib internals (queue,
  concurrent.futures, ...) keep untracked native locks.
* Product code marks shared-state writes with :func:`note_write` (and
  reads with :func:`note_read`) at the handful of fields that are
  supposed to be lock-guarded.  The hooks are near-free when the
  sanitizer is off: one global ``None`` check.
* Each ``(type, field, object)`` gets a shadow state machine:
  ``virgin -> exclusive(thread) -> shared -> shared_modified``.  On
  shared access the **candidate lockset** (locks held at *every* access
  so far) is intersected with the current thread's; an empty candidate
  set in the ``shared_modified`` state is a race, reported once per
  location with a stack fingerprint.
* A ``lock=`` argument on the hooks declares "the caller holds this
  lock here" — the escape hatch for locks created before :func:`enable`
  patched the factories (module-level locks in already-imported code).

Scope note: the sanitizer audits the *lock-guarded* invariants.  Fields
shared in phases under an external single-writer contract (an index
mutated, then searched) are not instrumented on the mutation path —
lockset analysis has no happens-before and would flag every phase
hand-off as a race.

Run it three ways::

    repro sanitize -- -q tests/test_index_executor.py   # CLI wrapper
    pytest -p repro.analysis.sanitizer ...              # pytest plugin
    with sanitized():                                   # in a test
        ...
    assert not races()

Under pytest the plugin enables at configure time (before any repro
module is imported, so even module-level locks get tracked), prints a
race report in the terminal summary, and fails the run with exit status
3 when races were found.
"""

from __future__ import annotations

import os
import sys
import threading
from contextlib import contextmanager
from dataclasses import dataclass, field
from hashlib import blake2b
from typing import Dict, List, Optional, Set, Tuple

#: the genuine factories, captured at import time so the sanitizer's own
#: bookkeeping never runs through its own proxies
_ORIG_LOCK = threading.Lock
_ORIG_RLOCK = threading.RLock

#: frames from these path fragments never appear in race stacks
_OWN_FRAMES = (os.path.join("analysis", "sanitizer"),)


@dataclass(frozen=True)
class Race:
    """One detected lockset violation (reported once per fingerprint)."""

    type_name: str           #: type of the owning object
    field_name: str          #: the field that raced
    access: str              #: "read" or "write"
    first_thread: str
    second_thread: str
    first_stack: Tuple[str, ...]
    second_stack: Tuple[str, ...]
    fingerprint: str         #: blake2b over both stacks + the field key

    def describe(self) -> str:
        lines = [
            f"RACE {self.fingerprint} on {self.type_name}.{self.field_name}"
            f" ({self.access} with empty lockset)",
            f"  first access  [{self.first_thread}]:",
        ]
        lines += [f"    {frame}" for frame in self.first_stack]
        lines.append(f"  second access [{self.second_thread}]:")
        lines += [f"    {frame}" for frame in self.second_stack]
        return "\n".join(lines)


@dataclass
class _Shadow:
    """Eraser shadow word for one (type, field, object) cell."""

    state: str = "virgin"    #: virgin|exclusive|shared|shared_modified
    owner: int = 0           #: thread ident while exclusive
    owner_name: str = ""
    lockset: Optional[frozenset] = None  #: candidate locks; None = unset
    first_stack: Tuple[str, ...] = ()


@dataclass
class _State:
    prefixes: Tuple[str, ...]
    mutex: object = field(default_factory=_ORIG_LOCK)
    shadows: Dict[Tuple[str, str, int], _Shadow] = field(default_factory=dict)
    races: List[Race] = field(default_factory=list)
    seen_fingerprints: Set[str] = field(default_factory=set)


_STATE: Optional[_State] = None
_HELD = threading.local()


def _held() -> Set[int]:
    locks = getattr(_HELD, "locks", None)
    if locks is None:
        locks = set()
        _HELD.locks = locks
    return locks


class _TrackedLock:
    """A Lock/RLock proxy that maintains the per-thread lockset."""

    def __init__(self, real, reentrant: bool = False) -> None:
        self._real = real
        self._reentrant = reentrant
        self._depth = 0  # only touched by the owning thread

    def acquire(self, *args, **kwargs):
        acquired = self._real.acquire(*args, **kwargs)
        if acquired:
            _held().add(id(self))
            if self._reentrant:
                self._depth += 1
        return acquired

    def release(self):
        self._real.release()  # raises on non-owner, before bookkeeping
        if self._reentrant:
            self._depth -= 1
            if self._depth > 0:
                return
        _held().discard(id(self))

    def __enter__(self):
        self.acquire()
        return self

    def __exit__(self, *exc_info):
        self.release()
        return False

    def locked(self):
        return self._real.locked()

    def __getattr__(self, name):
        return getattr(self._real, name)


def _make_factory(orig, reentrant: bool):
    def factory():
        real = orig()
        state = _STATE
        if state is None:
            return real
        caller = sys._getframe(1).f_globals.get("__name__", "")
        if isinstance(caller, str) and caller.startswith(state.prefixes):
            return _TrackedLock(real, reentrant=reentrant)
        return real

    factory._repro_sanitizer = True  # type: ignore[attr-defined]
    return factory


def _stack(skip: int = 2, limit: int = 8) -> Tuple[str, ...]:
    """A compact, relative-path stack: ``pkg/mod.py:func:line`` frames,
    innermost first, sanitizer frames elided."""
    frames: List[str] = []
    frame = sys._getframe(skip)
    while frame is not None and len(frames) < limit:
        filename = frame.f_code.co_filename
        if not any(part in filename for part in _OWN_FRAMES):
            parts = filename.replace("\\", "/").split("/")
            rel = "/".join(parts[-2:])
            frames.append(f"{rel}:{frame.f_code.co_name}:{frame.f_lineno}")
        frame = frame.f_back
    return tuple(frames)


def _fingerprint(
    key: Tuple[str, str], first: Tuple[str, ...], second: Tuple[str, ...]
) -> str:
    digest = blake2b(digest_size=8)
    digest.update("|".join(key).encode())
    for frame in first + ("::",) + second:
        digest.update(frame.encode())
    return digest.hexdigest()


# ----------------------------------------------------------------------
# the access hooks product code calls
# ----------------------------------------------------------------------
def note_write(owner: object, field_name: str, lock: object = None) -> None:
    """Record a write to ``owner.field_name`` by the current thread.

    ``lock`` declares a guard the caller holds that predates
    :func:`enable` (module-level locks); locks acquired through the
    patched factories are tracked automatically.
    """
    if _STATE is not None:
        _note(owner, field_name, lock, "write")


def note_read(owner: object, field_name: str, lock: object = None) -> None:
    """Record a read of ``owner.field_name`` by the current thread."""
    if _STATE is not None:
        _note(owner, field_name, lock, "read")


def _note(owner, field_name, lock, access) -> None:
    state = _STATE
    if state is None:  # disabled between the gate and here
        return
    held = frozenset(_held() | ({id(lock)} if lock is not None else set()))
    ident = threading.get_ident()
    name = threading.current_thread().name
    key = (type(owner).__name__, field_name, id(owner))
    with state.mutex:
        shadow = state.shadows.get(key)
        if shadow is None:
            shadow = _Shadow(
                state="exclusive",
                owner=ident,
                owner_name=name,
                first_stack=_stack(skip=3),
            )
            state.shadows[key] = shadow
            return
        if shadow.state == "exclusive":
            if shadow.owner == ident:
                return
            shadow.state = (
                "shared_modified" if access == "write" else "shared"
            )
            shadow.lockset = held
        elif shadow.state == "shared":
            shadow.lockset = (
                held if shadow.lockset is None else shadow.lockset & held
            )
            if access == "write":
                shadow.state = "shared_modified"
        else:  # shared_modified
            shadow.lockset = (
                held if shadow.lockset is None else shadow.lockset & held
            )
        if shadow.state == "shared_modified" and not shadow.lockset:
            second_stack = _stack(skip=3)
            fingerprint = _fingerprint(
                (key[0], key[1]), shadow.first_stack, second_stack
            )
            if fingerprint not in state.seen_fingerprints:
                state.seen_fingerprints.add(fingerprint)
                state.races.append(
                    Race(
                        type_name=key[0],
                        field_name=key[1],
                        access=access,
                        first_thread=shadow.owner_name,
                        second_thread=name,
                        first_stack=shadow.first_stack,
                        second_stack=second_stack,
                        fingerprint=fingerprint,
                    )
                )


# ----------------------------------------------------------------------
# lifecycle
# ----------------------------------------------------------------------
def enable(prefixes: Tuple[str, ...] = ("repro",)) -> None:
    """Start tracking: patch the lock factories and arm the hooks.
    Idempotent; nested enables keep the first configuration."""
    global _STATE
    if _STATE is not None:
        return
    # the on/off gate is main-thread lifecycle state, not worker data:
    # enable/disable run at session start/end, never from workers
    _STATE = _State(prefixes=tuple(prefixes))  # repro-lint: disable=CON003
    threading.Lock = _make_factory(_ORIG_LOCK, reentrant=False)
    threading.RLock = _make_factory(_ORIG_RLOCK, reentrant=True)


def disable() -> List[Race]:
    """Stop tracking, restore the real factories, return the races."""
    global _STATE
    state = _STATE
    _STATE = None  # repro-lint: disable=CON003  (main-thread lifecycle)
    threading.Lock = _ORIG_LOCK
    threading.RLock = _ORIG_RLOCK
    return list(state.races) if state is not None else []


def races() -> List[Race]:
    """Races recorded so far in the active (or just-disabled) session."""
    state = _STATE
    if state is None:
        return []
    with state.mutex:
        return list(state.races)


def is_enabled() -> bool:
    return _STATE is not None


@contextmanager
def sanitized(prefixes: Tuple[str, ...] = ("repro",)):
    """``with sanitized() as get_races:`` — scoped enable/disable."""
    already = _STATE is not None
    if not already:
        enable(prefixes)
    found: List[Race] = []
    try:
        yield found
    finally:
        if already:
            found.extend(races())
        else:
            found.extend(disable())


def render_report(found: List[Race]) -> str:
    if not found:
        return "repro-sanitize: no races detected"
    blocks = [race.describe() for race in found]
    blocks.append(f"repro-sanitize: {len(found)} race(s) detected")
    return "\n".join(blocks)


# ----------------------------------------------------------------------
# pytest plugin (load with ``-p repro.analysis.sanitizer``)
# ----------------------------------------------------------------------
#: exit status a sanitized pytest run reports when races were found
RACE_EXIT_STATUS = 3


def pytest_configure(config) -> None:
    prefixes = os.environ.get("REPRO_SANITIZE_PREFIXES", "repro")
    enable(tuple(p for p in prefixes.split(",") if p))
    config._repro_sanitizer_active = True


def pytest_sessionfinish(session, exitstatus) -> None:
    if races() and exitstatus == 0:
        session.exitstatus = RACE_EXIT_STATUS


def pytest_terminal_summary(terminalreporter) -> None:
    found = races()
    terminalreporter.section("repro-sanitize")
    terminalreporter.write_line(render_report(found))


def pytest_unconfigure(config) -> None:
    if getattr(config, "_repro_sanitizer_active", False):
        disable()
