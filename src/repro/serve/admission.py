"""Admission control: bounded queueing in front of bounded concurrency.

The service's load-shedding story in one class.  A request that wants
pipeline time must :meth:`~AdmissionController.admit` first:

* if a concurrency slot is free it runs immediately;
* if all ``max_concurrency`` slots are busy it waits in a FIFO queue —
  but only ``max_queue`` requests may wait;
* beyond that the request is **shed**: :class:`ServiceOverloaded`
  carries the ``Retry-After`` hint and the server answers ``429``.

Shedding at admission is what keeps an overloaded server's latency
bounded — work the server cannot start soon is refused up front instead
of queueing without limit ("millions of users" behind a finite box).

Every transition is mirrored into the metrics registry:
``serve.inflight`` / ``serve.queue_depth`` gauges (plus
``serve.inflight_peak``, which the bounded-concurrency tests assert
never exceeds the configured width), and ``serve.admitted`` /
``serve.shed`` counters.  The controller lives on the event loop —
single-threaded by construction — so its own counters need no locks;
the pipeline work itself happens on worker threads *after* admission.
"""

from __future__ import annotations

import asyncio
from contextlib import asynccontextmanager
from typing import AsyncIterator, Optional

from repro.obs.clock import Clock, MonotonicClock
from repro.obs.events import EventLog, get_event_log
from repro.obs.metrics import MetricsRegistry


class ServiceOverloaded(Exception):
    """Queue full: the caller should retry after ``retry_after``."""

    def __init__(self, retry_after: float) -> None:
        super().__init__(
            f"service overloaded; retry after {retry_after:g}s"
        )
        self.retry_after = retry_after


class AdmissionController:
    """Bounded FIFO queue + semaphore-bounded concurrency."""

    def __init__(
        self,
        max_concurrency: int,
        max_queue: int,
        registry: MetricsRegistry,
        retry_after_seconds: float = 1.0,
        clock: Optional[Clock] = None,
        events: Optional[EventLog] = None,
    ) -> None:
        if max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {max_concurrency}"
            )
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        self.max_concurrency = max_concurrency
        self.max_queue = max_queue
        self.retry_after_seconds = retry_after_seconds
        self._registry = registry
        # queue waits are timed through the injectable clock (TickClock
        # in tests); admission decisions go to the flight recorder —
        # the explicitly passed one, else whichever is installed
        self._clock = clock or MonotonicClock()
        self._events = events
        # asyncio.Semaphore wakes waiters in acquisition order: the
        # wait line really is FIFO
        self._semaphore = asyncio.Semaphore(max_concurrency)
        self._inflight = 0
        self._queued = 0
        self._peak_inflight = 0

    # ------------------------------------------------------------------
    # introspection (event-loop thread)
    # ------------------------------------------------------------------
    @property
    def inflight(self) -> int:
        return self._inflight

    @property
    def queued(self) -> int:
        return self._queued

    @property
    def peak_inflight(self) -> int:
        """High-water mark of concurrent admissions (also exported as
        the ``serve.inflight_peak`` gauge)."""
        return self._peak_inflight

    # ------------------------------------------------------------------
    # the admission path
    # ------------------------------------------------------------------
    def _set_gauges(self) -> None:
        self._registry.gauge("serve.inflight").set(self._inflight)
        self._registry.gauge("serve.queue_depth").set(self._queued)
        self._registry.gauge("serve.inflight_peak").set(self._peak_inflight)

    @asynccontextmanager
    async def admit(self) -> AsyncIterator[None]:
        """Hold one concurrency slot for the ``async with`` body.

        Raises :class:`ServiceOverloaded` (without waiting) when every
        slot is busy and the wait line is already ``max_queue`` deep.
        """
        events = self._events if self._events is not None else get_event_log()
        if self._semaphore.locked() and self._queued >= self.max_queue:
            self._registry.counter("serve.shed").inc()
            events.emit(
                "admission.shed",
                inflight=self._inflight,
                queued=self._queued,
                retry_after=self.retry_after_seconds,
            )
            raise ServiceOverloaded(self.retry_after_seconds)
        enqueued_at = self._clock.now()
        self._queued += 1
        self._set_gauges()
        admitted = False
        try:
            async with self._semaphore:
                self._queued -= 1
                admitted = True
                self._inflight += 1
                self._peak_inflight = max(
                    self._peak_inflight, self._inflight
                )
                self._registry.counter("serve.admitted").inc()
                events.emit(
                    "admission.admitted",
                    queue_wait_seconds=self._clock.now() - enqueued_at,
                    inflight=self._inflight,
                )
                self._set_gauges()
                try:
                    yield
                finally:
                    self._inflight -= 1
        finally:
            if not admitted:
                # cancelled while waiting in line
                self._queued -= 1
            self._set_gauges()
