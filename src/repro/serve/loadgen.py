"""Deterministic load generation for the verification service.

Two halves, split on purpose:

* **what** to send — :func:`build_request_mix` derives a seeded request
  mix from the lake itself (claims and tuples over real tables, plus
  small batches).  The mix is byte-stable: same lake + seed + counts
  gives byte-identical request bodies, and :func:`mix_digest` pins that
  in benchmark baselines so a drifting mix can't masquerade as a
  performance change;
* **when** to send it — :class:`LoadGenerator` replays a mix either
  **closed-loop** (``clients`` callers, each waiting for its response
  before sending the next: throughput is whatever the server sustains)
  or **open-loop** (a fixed arrival rate that does *not* slow down when
  the server does — the pattern that actually exposes queueing collapse
  and the admission controller's shedding).

Latency is read through the injectable :class:`~repro.obs.clock.Clock`
(tests pin a ``TickClock``); only arrival pacing touches the event
loop's own timer, because a frozen clock cannot schedule the future.
Reports carry nearest-rank p50/p95/p99, throughput, and shed rate —
the ``BENCH_serve.json`` columns.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datalake.lake import DataLake
from repro.obs.clock import Clock, MonotonicClock
from repro.serve.http import read_response, request_bytes

#: default kind weights for :func:`build_request_mix`
DEFAULT_WEIGHTS: Tuple[Tuple[str, float], ...] = (
    ("claim", 0.4),
    ("tuple", 0.4),
    ("batch", 0.2),
)

#: objects per generated /verify-batch request
BATCH_SIZE = 4


@dataclass(frozen=True)
class PlannedRequest:
    """One request the harness will replay."""

    kind: str
    method: str
    path: str
    body: bytes


def _corrupt_digits(value: str, rng: random.Random) -> str:
    """A plausibly-wrong variant of a cell value (flips one digit)."""
    digits = [i for i, ch in enumerate(value) if ch.isdigit()]
    if not digits:
        return value + "x"
    slot = digits[rng.randrange(len(digits))]
    old = value[slot]
    new = str((int(old) + 1 + rng.randrange(8)) % 10)
    return value[:slot] + new + value[slot + 1:]


def _verify_body(lake: DataLake, rng: random.Random) -> Dict[str, object]:
    """One claim/tuple verify body over a random real cell."""
    tables = lake.tables()
    table = tables[rng.randrange(len(tables))]
    row_index = rng.randrange(table.num_rows)
    row = table.row(row_index)
    key_column = table.key_column or table.columns[0]
    value_columns = [c for c in table.columns if c != key_column]
    column = (
        value_columns[rng.randrange(len(value_columns))]
        if value_columns else key_column
    )
    truthful = rng.random() < 0.5
    value = row.get(column) or ""
    if not truthful:
        value = _corrupt_digits(value, rng)
    if rng.random() < 0.5:
        subject = row.get(key_column) or ""
        return {
            "kind": "claim",
            "text": f"the {column} of {subject} is {value}",
        }
    body: Dict[str, object] = {
        "kind": "tuple",
        "table_id": table.table_id,
        "row": row_index,
        "column": column,
    }
    if not truthful:
        body["value"] = value
    return body


def build_request_mix(
    lake: DataLake,
    count: int,
    seed: int = 0,
    weights: Sequence[Tuple[str, float]] = DEFAULT_WEIGHTS,
) -> List[PlannedRequest]:
    """``count`` seeded requests over the lake's own content.

    Bodies are ``json.dumps(..., sort_keys=True)`` of seeded draws, so
    the whole mix is byte-stable for a given (lake, seed, count,
    weights) — the property :func:`mix_digest` asserts.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    kinds = [kind for kind, _ in weights]
    cum: List[float] = []
    total = 0.0
    for _, weight in weights:
        if weight < 0:
            raise ValueError(f"weights must be >= 0, got {weight}")
        total += weight
        cum.append(total)
    if total <= 0:
        raise ValueError("at least one weight must be positive")
    rng = random.Random(seed)
    requests: List[PlannedRequest] = []
    for _ in range(count):
        draw = rng.random() * total
        kind = kinds[-1]
        for name, bound in zip(kinds, cum):
            if draw < bound:
                kind = name
                break
        if kind == "batch":
            payload: Dict[str, object] = {
                "objects": [
                    _verify_body(lake, rng) for _ in range(BATCH_SIZE)
                ],
                "max_workers": 2,
            }
            path = "/verify-batch"
        elif kind in ("claim", "tuple"):
            body = _verify_body(lake, rng)
            # re-draw until the body matches the asked-for kind, so the
            # weights mean what they say
            while body["kind"] != kind:
                body = _verify_body(lake, rng)
            payload, path = body, "/verify"
        else:
            raise ValueError(f"unknown request kind {kind!r}")
        requests.append(PlannedRequest(
            kind=kind,
            method="POST",
            path=path,
            body=json.dumps(payload, sort_keys=True).encode("utf-8"),
        ))
    return requests


def mix_digest(requests: Sequence[PlannedRequest]) -> str:
    """Stable hex digest of a mix (pins benchmark inputs)."""
    digest = hashlib.blake2b(digest_size=8)
    for request in requests:
        digest.update(request.method.encode("utf-8"))
        digest.update(request.path.encode("utf-8"))
        digest.update(request.body)
        digest.update(b"\x00")
    return digest.hexdigest()


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (0 < q <= 100); 0.0 on empty input."""
    if not 0 < q <= 100:
        raise ValueError(f"q must be in (0, 100], got {q}")
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(1, -(-len(ordered) * q // 100))  # ceil without floats
    return ordered[int(rank) - 1]


@dataclass
class LoadReport:
    """What one load run measured."""

    mode: str
    total: int
    statuses: Dict[int, int]
    latencies: List[float] = field(repr=False, default_factory=list)
    duration_seconds: float = 0.0
    #: request path -> that route's latencies; a mixed run's overall
    #: percentiles hide the split between cheap /verify and expensive
    #: /verify-batch, which is exactly what the per-endpoint breakdown
    #: in BENCH_serve.json exists to show
    route_latencies: Dict[str, List[float]] = field(
        repr=False, default_factory=dict
    )

    @property
    def ok(self) -> int:
        return self.statuses.get(200, 0)

    @property
    def shed(self) -> int:
        return self.statuses.get(429, 0)

    @property
    def shed_rate(self) -> float:
        return self.shed / self.total if self.total else 0.0

    @property
    def throughput(self) -> float:
        """Completed requests per measured second (0 when the injected
        clock never advanced)."""
        if self.duration_seconds <= 0:
            return 0.0
        return self.total / self.duration_seconds

    def latency_percentile(self, q: float) -> float:
        return percentile(self.latencies, q)

    def per_endpoint(self) -> Dict[str, Dict[str, object]]:
        """Path -> {count, p50, p95, p99}, sorted by path."""
        return {
            path: {
                "count": len(self.route_latencies[path]),
                "p50": percentile(self.route_latencies[path], 50),
                "p95": percentile(self.route_latencies[path], 95),
                "p99": percentile(self.route_latencies[path], 99),
            }
            for path in sorted(self.route_latencies)
        }

    def to_dict(self) -> Dict[str, object]:
        return {
            "mode": self.mode,
            "total": self.total,
            "ok": self.ok,
            "shed": self.shed,
            "shed_rate": self.shed_rate,
            "statuses": {
                str(code): self.statuses[code]
                for code in sorted(self.statuses)
            },
            "duration_seconds": self.duration_seconds,
            "throughput_rps": self.throughput,
            "latency_p50": self.latency_percentile(50),
            "latency_p95": self.latency_percentile(95),
            "latency_p99": self.latency_percentile(99),
            "per_endpoint": self.per_endpoint(),
        }

    def summary(self) -> str:
        return (
            f"{self.mode}: {self.total} requests, {self.ok} ok, "
            f"{self.shed} shed ({self.shed_rate:.0%}); "
            f"p50 {self.latency_percentile(50) * 1e3:.1f}ms "
            f"p95 {self.latency_percentile(95) * 1e3:.1f}ms "
            f"p99 {self.latency_percentile(99) * 1e3:.1f}ms; "
            f"{self.throughput:.1f} req/s"
        )


class LoadGenerator:
    """Replay a request mix against a running service."""

    def __init__(
        self, host: str, port: int, clock: Optional[Clock] = None
    ) -> None:
        self.host = host
        self.port = port
        self.clock = clock or MonotonicClock()

    # ------------------------------------------------------------------
    # one request, shared by both loops
    # ------------------------------------------------------------------
    async def _send(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        request: PlannedRequest,
        keep_alive: bool,
    ) -> Tuple[int, float]:
        started = self.clock.now()
        writer.write(request_bytes(
            request.method, request.path, request.body,
            host=self.host, keep_alive=keep_alive,
        ))
        await writer.drain()
        status, _, _ = await read_response(reader)
        return status, self.clock.now() - started

    # ------------------------------------------------------------------
    # closed loop: N clients, each one-request-at-a-time
    # ------------------------------------------------------------------
    async def _run_closed(
        self, requests: Sequence[PlannedRequest], clients: int
    ) -> LoadReport:
        statuses: Dict[int, int] = {}
        latencies: List[float] = []
        by_route: Dict[str, List[float]] = {}

        async def client(worker: int) -> None:
            reader, writer = await asyncio.open_connection(
                self.host, self.port
            )
            try:
                for request in requests[worker::clients]:
                    status, latency = await self._send(
                        reader, writer, request, keep_alive=True
                    )
                    statuses[status] = statuses.get(status, 0) + 1
                    latencies.append(latency)
                    by_route.setdefault(request.path, []).append(latency)
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass

        started = self.clock.now()
        await asyncio.gather(*(client(w) for w in range(clients)))
        duration = self.clock.now() - started
        return LoadReport(
            mode=f"closed[{clients}]",
            total=len(requests),
            statuses=statuses,
            latencies=latencies,
            duration_seconds=duration,
            route_latencies=by_route,
        )

    def run_closed(
        self, requests: Sequence[PlannedRequest], clients: int = 4
    ) -> LoadReport:
        """``clients`` persistent connections, next request only after
        the previous response — throughput self-limits to the server."""
        if clients < 1:
            raise ValueError(f"clients must be >= 1, got {clients}")
        return asyncio.run(self._run_closed(requests, clients))

    # ------------------------------------------------------------------
    # open loop: fixed arrival rate, one connection per request
    # ------------------------------------------------------------------
    async def _run_open(
        self, requests: Sequence[PlannedRequest], rate: float
    ) -> LoadReport:
        statuses: Dict[int, int] = {}
        latencies: List[float] = []
        by_route: Dict[str, List[float]] = {}
        loop = asyncio.get_running_loop()
        # pacing reads the loop's timer, not the metrics clock: a frozen
        # TickClock measures latency fine but cannot wake the future
        epoch = loop.time()

        async def fire(request: PlannedRequest, slot: int) -> None:
            delay = epoch + slot / rate - loop.time()
            if delay > 0:
                await asyncio.sleep(delay)
            reader, writer = await asyncio.open_connection(
                self.host, self.port
            )
            try:
                status, latency = await self._send(
                    reader, writer, request, keep_alive=False
                )
                statuses[status] = statuses.get(status, 0) + 1
                latencies.append(latency)
                by_route.setdefault(request.path, []).append(latency)
            finally:
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionResetError, BrokenPipeError):
                    pass

        started = self.clock.now()
        await asyncio.gather(
            *(fire(request, slot) for slot, request in enumerate(requests))
        )
        duration = self.clock.now() - started
        return LoadReport(
            mode=f"open[{rate:g}/s]",
            total=len(requests),
            statuses=statuses,
            latencies=latencies,
            duration_seconds=duration,
            route_latencies=by_route,
        )

    def run_open(
        self, requests: Sequence[PlannedRequest], rate: float
    ) -> LoadReport:
        """Arrivals at ``rate`` per second whether or not responses come
        back — the pattern that drives an overloaded server into its
        shedding path instead of politely waiting."""
        if rate <= 0:
            raise ValueError(f"rate must be > 0, got {rate}")
        return asyncio.run(self._run_open(requests, rate))
