"""A minimal HTTP/1.1 layer over ``asyncio`` streams.

Just enough protocol for the verification service and its load
harness — request-line + headers + ``Content-Length`` bodies,
keep-alive by default, explicit limits on every input — with **no new
dependencies**.  Chunked transfer encoding, continuations, and trailers
are deliberately out of scope; a malformed or oversized request maps to
a :class:`HttpError` the server answers with the right 4xx.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qsl, unquote, urlsplit

#: input limits (bytes / counts) the parser enforces
MAX_REQUEST_LINE = 8192
MAX_HEADER_LINE = 8192
MAX_HEADER_COUNT = 100

#: the status lines the service emits
REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


class HttpError(Exception):
    """A protocol-level fault the server answers with ``status``."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status
        self.message = message


class ConnectionClosed(Exception):
    """The peer closed the connection between requests (not an error)."""


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str]
    version: str
    headers: Dict[str, str]  # keys lower-cased
    body: bytes = b""

    @property
    def keep_alive(self) -> bool:
        connection = self.headers.get("connection", "").lower()
        if self.version == "HTTP/1.0":
            return connection == "keep-alive"
        return connection != "close"


@dataclass
class Response:
    """One response the server will serialize."""

    status: int
    body: bytes = b""
    content_type: str = "application/json"
    headers: Dict[str, str] = field(default_factory=dict)

    def to_bytes(self, keep_alive: bool) -> bytes:
        reason = REASONS.get(self.status, "Unknown")
        lines = [f"HTTP/1.1 {self.status} {reason}"]
        headers = dict(self.headers)
        headers.setdefault("Content-Type", self.content_type)
        headers["Content-Length"] = str(len(self.body))
        headers["Connection"] = "keep-alive" if keep_alive else "close"
        for name in sorted(headers):
            lines.append(f"{name}: {headers[name]}")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        return head + self.body


async def _read_line(reader: asyncio.StreamReader, limit: int) -> bytes:
    try:
        line = await reader.readuntil(b"\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            raise ConnectionClosed() from exc
        raise HttpError(400, "truncated request") from exc
    except asyncio.LimitOverrunError as exc:
        raise HttpError(400, "header line too long") from exc
    if len(line) > limit:
        raise HttpError(400, "header line too long")
    return line.rstrip(b"\r\n")


async def read_request(
    reader: asyncio.StreamReader, max_body_bytes: int
) -> Request:
    """Parse one request off the stream.

    Raises :class:`ConnectionClosed` on a clean EOF before the request
    line (keep-alive peer went away) and :class:`HttpError` on anything
    malformed or over the limits.
    """
    raw_line = await _read_line(reader, MAX_REQUEST_LINE)
    if not raw_line:
        raise ConnectionClosed()
    try:
        request_line = raw_line.decode("latin-1")
        method, target, version = request_line.split(" ", 2)
    except ValueError as exc:
        raise HttpError(400, "malformed request line") from exc
    if version not in ("HTTP/1.0", "HTTP/1.1"):
        raise HttpError(400, f"unsupported HTTP version {version!r}")

    headers: Dict[str, str] = {}
    while True:
        line = await _read_line(reader, MAX_HEADER_LINE)
        if not line:
            break
        if len(headers) >= MAX_HEADER_COUNT:
            raise HttpError(400, "too many headers")
        try:
            name, value = line.decode("latin-1").split(":", 1)
        except ValueError as exc:
            raise HttpError(400, "malformed header") from exc
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_header = headers.get("content-length")
    if length_header is not None:
        try:
            length = int(length_header)
        except ValueError as exc:
            raise HttpError(400, "malformed Content-Length") from exc
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        if length > max_body_bytes:
            raise HttpError(
                413, f"request body over {max_body_bytes} bytes"
            )
        if length:
            try:
                body = await reader.readexactly(length)
            except asyncio.IncompleteReadError as exc:
                raise HttpError(400, "truncated request body") from exc

    split = urlsplit(target)
    query = dict(parse_qsl(split.query, keep_blank_values=True))
    return Request(
        method=method.upper(),
        path=unquote(split.path) or "/",
        query=query,
        version=version,
        headers=headers,
        body=body,
    )


async def read_response(
    reader: asyncio.StreamReader,
) -> Tuple[int, Dict[str, str], bytes]:
    """Client side: parse one response (status, headers, body).

    The load generator and tests speak through this; it accepts exactly
    what :meth:`Response.to_bytes` produces (Content-Length framing).
    """
    raw_line = await _read_line(reader, MAX_REQUEST_LINE)
    try:
        _, status_text, _ = raw_line.decode("latin-1").split(" ", 2)
        status = int(status_text)
    except ValueError as exc:
        raise HttpError(400, "malformed status line") from exc
    headers: Dict[str, str] = {}
    while True:
        line = await _read_line(reader, MAX_HEADER_LINE)
        if not line:
            break
        name, value = line.decode("latin-1").split(":", 1)
        headers[name.strip().lower()] = value.strip()
    body = b""
    length = int(headers.get("content-length", "0"))
    if length:
        body = await reader.readexactly(length)
    return status, headers, body


def request_bytes(
    method: str,
    path: str,
    body: bytes = b"",
    host: str = "localhost",
    keep_alive: bool = True,
    content_type: Optional[str] = None,
) -> bytes:
    """Client side: serialize one request (Content-Length framing)."""
    lines = [
        f"{method} {path} HTTP/1.1",
        f"Host: {host}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
        f"Content-Length: {len(body)}",
    ]
    if content_type is None and body:
        content_type = "application/json"
    if content_type is not None:
        lines.append(f"Content-Type: {content_type}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1") + body
