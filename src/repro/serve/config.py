"""Service configuration (admission control + lifecycle knobs)."""

from __future__ import annotations

import multiprocessing
from dataclasses import dataclass
from typing import Optional

from repro.obs.clock import Clock


def default_pool_start_method() -> Optional[str]:
    """The start method a long-lived threaded server should use for the
    shard process pool.

    ``fork`` — the one-shot CLI default — is unsafe once the server's
    request threads exist (a post-crash respawn would fork a threaded
    parent), so prefer ``forkserver`` (forks from a clean single-thread
    helper) and fall back to ``spawn``.
    """
    methods = multiprocessing.get_all_start_methods()
    if "forkserver" in methods:
        return "forkserver"
    if "spawn" in methods:
        return "spawn"
    return None  # pragma: no cover - every CPython platform has spawn


@dataclass
class ServeConfig:
    """Knobs of the verification service.

    * ``max_concurrency`` — verifies allowed in flight at once (the
      admission semaphore's width AND the worker-pool size; the
      ``serve.inflight`` gauge never exceeds it);
    * ``max_queue`` — requests allowed to wait for a slot; a request
      arriving with the queue full is shed with ``429`` and
      ``Retry-After: retry_after_seconds``;
    * ``retry_after_seconds`` — the backoff hint shed responses carry;
    * ``max_body_bytes`` / ``max_batch_objects`` — request-size guards
      (``413`` / ``400``);
    * ``batch_max_workers`` — cap on the per-request ``max_workers`` a
      ``/verify-batch`` body may ask for;
    * ``trace_cache_size`` — finished request traces kept for
      ``GET /trace/<trace_id>`` (oldest evicted first);
    * ``pool_workers`` / ``pool_start_method`` — forwarded to
      :func:`repro.index.executor.configure_process_pool` at startup so
      the shard process pool is created *before* request threads exist
      (``None`` start method resolves to
      :func:`default_pool_start_method`);
    * ``event_log_size`` — flight-recorder ring capacity (the last N
      structured events behind ``GET /debug/events``);
    * ``slow_request_seconds`` — requests slower than this are recorded
      as ``serve.slow_request`` events;
    * ``debug_profile_max_seconds`` — upper clamp on the ``seconds``
      a ``GET /debug/profile`` call may sample for;
    * ``profile_sample_interval`` — the stack sampler's period;
    * ``clock`` — the injectable time source for request metrics
      (defaults to the system's clock; tests pin a TickClock).
    """

    host: str = "127.0.0.1"
    port: int = 8080
    max_concurrency: int = 4
    max_queue: int = 16
    retry_after_seconds: float = 1.0
    max_body_bytes: int = 1 << 20
    max_batch_objects: int = 256
    batch_max_workers: int = 4
    trace_cache_size: int = 512
    pool_workers: Optional[int] = None
    pool_start_method: Optional[str] = None
    event_log_size: int = 512
    slow_request_seconds: float = 1.0
    debug_profile_max_seconds: float = 10.0
    profile_sample_interval: float = 0.005
    clock: Optional[Clock] = None

    def __post_init__(self) -> None:
        if self.max_concurrency < 1:
            raise ValueError(
                f"max_concurrency must be >= 1, got {self.max_concurrency}"
            )
        if self.max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {self.max_queue}")
        if self.retry_after_seconds <= 0:
            raise ValueError(
                f"retry_after_seconds must be > 0, "
                f"got {self.retry_after_seconds}"
            )
        if self.max_body_bytes < 1:
            raise ValueError(
                f"max_body_bytes must be >= 1, got {self.max_body_bytes}"
            )
        if self.max_batch_objects < 1:
            raise ValueError(
                f"max_batch_objects must be >= 1, "
                f"got {self.max_batch_objects}"
            )
        if self.batch_max_workers < 1:
            raise ValueError(
                f"batch_max_workers must be >= 1, "
                f"got {self.batch_max_workers}"
            )
        if self.trace_cache_size < 1:
            raise ValueError(
                f"trace_cache_size must be >= 1, got {self.trace_cache_size}"
            )
        if self.event_log_size < 1:
            raise ValueError(
                f"event_log_size must be >= 1, got {self.event_log_size}"
            )
        if self.slow_request_seconds <= 0:
            raise ValueError(
                f"slow_request_seconds must be > 0, "
                f"got {self.slow_request_seconds}"
            )
        if self.debug_profile_max_seconds <= 0:
            raise ValueError(
                f"debug_profile_max_seconds must be > 0, "
                f"got {self.debug_profile_max_seconds}"
            )
        if self.profile_sample_interval <= 0:
            raise ValueError(
                f"profile_sample_interval must be > 0, "
                f"got {self.profile_sample_interval}"
            )
