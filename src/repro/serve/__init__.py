"""The verification service: VerifAI behind a long-lived HTTP front end.

The paper's promise is verification *in the serving path* of generative
AI; this package turns the library + one-shot CLI into that shape.  A
stdlib-``asyncio`` HTTP server exposes the pipeline
(``POST /verify``, ``POST /verify-batch``), its lineage
(``GET /explain/<record_id>``, ``GET /trace/<trace_id>``), and its
operational surface (``GET /metrics`` in Prometheus text exposition,
``GET /healthz``).  Requests flow through an admission controller — a
bounded FIFO queue feeding semaphore-bounded concurrency over a worker
pool — so overload sheds deterministically with ``429`` +
``Retry-After`` instead of collapsing, and every request's verification
is traced end to end (span tree ↔ provenance record, both ways).

``repro.serve.loadgen`` is the matching deterministic load harness:
seeded request mixes, open- and closed-loop arrival patterns, and
p50/p95/p99 latency / throughput / shed-rate reports — the numbers
``BENCH_serve.json`` tracks PR over PR.

See docs/serving.md for the endpoint and knob reference.
"""

from repro.serve.admission import AdmissionController, ServiceOverloaded
from repro.serve.app import VerificationService
from repro.serve.config import ServeConfig
from repro.serve.loadgen import (
    LoadGenerator,
    LoadReport,
    build_request_mix,
    mix_digest,
)
from repro.serve.prometheus import render_prometheus
from repro.serve.runner import ServerThread

__all__ = [
    "AdmissionController",
    "LoadGenerator",
    "LoadReport",
    "ServeConfig",
    "ServerThread",
    "ServiceOverloaded",
    "VerificationService",
    "build_request_mix",
    "mix_digest",
    "render_prometheus",
]
