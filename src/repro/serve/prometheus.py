"""Prometheus text exposition of the :class:`MetricsRegistry`.

Renders every registered instrument in the text format scrapers accept
(version 0.0.4): counters and gauges as single samples, histograms as
cumulative ``_bucket{le=...}`` series plus ``_sum`` / ``_count``.
Instrument names are dotted (``serve.request_seconds``); Prometheus
names are the same words underscored under one namespace prefix
(``repro_serve_request_seconds``).  Output is sorted by metric name, so
two scrapes of identical registry state are byte-identical.
"""

from __future__ import annotations

import re
from typing import List

from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry

#: the exposition content type the /metrics endpoint serves
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_INVALID = re.compile(r"[^a-zA-Z0-9_:]")


def metric_name(name: str, prefix: str = "repro") -> str:
    """``serve.request_seconds`` -> ``repro_serve_request_seconds``."""
    flat = _INVALID.sub("_", name.replace(".", "_"))
    return f"{prefix}_{flat}" if prefix else flat


def _format_value(value: float) -> str:
    # integers print bare (Prometheus convention for counts)
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def _format_bound(bound: float) -> str:
    if float(bound).is_integer():
        return f"{bound:.1f}"
    return repr(float(bound))


def render_prometheus(
    registry: MetricsRegistry, prefix: str = "repro"
) -> str:
    """The full exposition body for ``GET /metrics``."""
    lines: List[str] = []
    instruments = registry.instruments()
    for name in sorted(instruments):
        instrument = instruments[name]
        exposed = metric_name(name, prefix)
        if isinstance(instrument, Counter):
            lines.append(f"# TYPE {exposed} counter")
            lines.append(f"{exposed} {_format_value(instrument.value)}")
        elif isinstance(instrument, Gauge):
            lines.append(f"# TYPE {exposed} gauge")
            lines.append(f"{exposed} {_format_value(instrument.value)}")
        elif isinstance(instrument, Histogram):
            lines.append(f"# TYPE {exposed} histogram")
            cumulative = 0
            counts = instrument.bucket_counts()
            for bound, count in zip(instrument.buckets, counts):
                cumulative += count
                lines.append(
                    f'{exposed}_bucket{{le="{_format_bound(bound)}"}} '
                    f"{cumulative}"
                )
            total = cumulative + counts[-1]
            lines.append(f'{exposed}_bucket{{le="+Inf"}} {total}')
            lines.append(f"{exposed}_sum {_format_value(instrument.sum)}")
            lines.append(f"{exposed}_count {total}")
    return "\n".join(lines) + "\n"
