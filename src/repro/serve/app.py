"""The asyncio verification service.

One :class:`VerificationService` wraps one :class:`~repro.core.pipeline.
VerifAI` system behind the HTTP surface in docs/serving.md:

========================  =============================================
``POST /verify``          verify one claim/tuple (traced, admitted)
``POST /verify-batch``    verify a campaign via the batch engine
``GET /explain/<rid>``    provenance lineage replay for a record
``GET /trace/<tid>``      exported span tree of a served request
``GET /metrics``          Prometheus text exposition of the registry
``GET /healthz``          liveness + admission snapshot
``GET /debug/events``     flight-recorder dump (JSON or ``?format=jsonl``)
``GET /debug/profile``    sample stacks for ``?seconds=N``, collapsed
========================  =============================================

Concurrency model: the event loop owns parsing, routing, and admission;
actual pipeline work runs on a thread pool exactly ``max_concurrency``
wide, entered only through the :class:`AdmissionController`.  The two
bounds agree by construction, so the ``serve.inflight_peak`` gauge can
never exceed the configured width.  Each request's verification runs
under a fresh metrics :class:`~repro.obs.metrics.Scope` and records a
span tree whose trace id lands in the provenance record (and the
response), closing the request → trace → record loop.

Startup order matters on purpose: the shard process pool is configured
and (when the system scatters to processes) warmed **before** the first
request thread exists — forking after threads is the hazard the
executor lifecycle API exists to avoid.
"""

from __future__ import annotations

import asyncio
import json
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional

from repro.core.pipeline import VerifAI
from repro.index.executor import (
    configure_process_pool,
    shutdown_process_pool,
)
from repro.obs.clock import Clock
from repro.obs.events import (
    EventLog,
    install_event_log,
    uninstall_event_log,
)
from repro.obs.export import trace_to_dict
from repro.obs.metrics import Histogram, get_registry
from repro.obs.profile import StackSampler
from repro.serve.admission import AdmissionController, ServiceOverloaded
from repro.serve.config import ServeConfig, default_pool_start_method
from repro.serve.http import (
    ConnectionClosed,
    HttpError,
    Request,
    Response,
    read_request,
)
from repro.serve.prometheus import CONTENT_TYPE, render_prometheus
from repro.serve.protocol import (
    BadRequest,
    parse_batch,
    parse_object,
    report_to_dict,
)


#: bucket bounds for ``serve.request_seconds`` — finer at the fast end
#: than the pipeline-wide DEFAULT_BUCKETS, because request latencies are
#: what the SLO watches; created once in ``__init__`` so any other call
#: site asking for conflicting bounds fails loudly
SERVE_LATENCY_BUCKETS = (
    0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


def _json_body(payload: object) -> bytes:
    return (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def _json_response(status: int, payload: object, **headers: str) -> Response:
    return Response(status, _json_body(payload), headers=dict(headers))


def _error_response(status: int, message: str, **headers: str) -> Response:
    return _json_response(status, {"error": message, "status": status},
                          **headers)


class VerificationService:
    """One VerifAI system served over asyncio (see module docstring)."""

    def __init__(
        self, system: VerifAI, config: Optional[ServeConfig] = None
    ) -> None:
        self.system = system
        self.config = config or ServeConfig()
        #: the injectable time source for request latency metrics — the
        #: pipeline's clock unless the config pins its own (tests pin a
        #: frozen TickClock on both)
        self.clock: Clock = self.config.clock or system.clock
        self.registry = get_registry()
        #: the flight recorder; installed process-wide while the
        #: service runs so core/index emitters land here too
        self.events = EventLog(
            capacity=self.config.event_log_size, clock=self.clock
        )
        #: created once with the serve-specific bucket scheme; later
        #: callers that disagree on bounds fail loudly in the registry
        self._request_seconds = self.registry.histogram(
            "serve.request_seconds", buckets=SERVE_LATENCY_BUCKETS
        )
        self.admission = AdmissionController(
            self.config.max_concurrency,
            self.config.max_queue,
            self.registry,
            retry_after_seconds=self.config.retry_after_seconds,
            clock=self.clock,
            events=self.events,
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        #: open connections, so stop() can drain them cooperatively
        #: instead of letting loop teardown cancel them mid-request
        self._conn_tasks: set = set()
        self._conn_writers: set = set()
        #: trace id -> exported trace dict of a served request, bounded
        #: FIFO (oldest evicted); backs ``GET /trace/<trace_id>``
        self._traces: "OrderedDict[str, Dict[str, object]]" = OrderedDict()
        self._request_counter = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Configure the process pool, build indexes, open the socket."""
        start_method = (
            self.config.pool_start_method or default_pool_start_method()
        )
        # warm eagerly only when searches will actually scatter to
        # processes; otherwise just record the server-safe config for a
        # later opt-in without paying worker startup now
        warm = self.system.config.shard_search_executor == "process"
        configure_process_pool(
            max_workers=self.config.pool_workers,
            start_method=start_method,
            warm=warm,
        )
        self.system.build_indexes()
        install_event_log(self.events)
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.max_concurrency,
            thread_name_prefix="serve-verify",
        )
        self._server = await asyncio.start_server(
            self._serve_connection, self.config.host, self.config.port
        )

    async def stop(self) -> None:
        """Close the socket, drain workers, tear down the process pool."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # closing the transports EOFs the readers: every connection loop
        # sees ConnectionClosed and exits on its own
        for writer in list(self._conn_writers):
            writer.close()
        if self._conn_tasks:
            await asyncio.gather(
                *self._conn_tasks, return_exceptions=True
            )
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        uninstall_event_log(self.events)
        shutdown_process_pool()

    @property
    def address(self) -> tuple:
        """(host, port) actually bound — port 0 resolves here."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("service is not started")
        return self._server.sockets[0].getsockname()[:2]

    # ------------------------------------------------------------------
    # connection loop
    # ------------------------------------------------------------------
    async def _serve_connection(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._conn_tasks.add(task)
        self._conn_writers.add(writer)
        try:
            while True:
                try:
                    request = await read_request(
                        reader, self.config.max_body_bytes
                    )
                except ConnectionClosed:
                    break
                except HttpError as exc:
                    self._count_response(exc.status)
                    writer.write(
                        _error_response(exc.status, exc.message)
                        .to_bytes(keep_alive=False)
                    )
                    await writer.drain()
                    break
                response = await self._dispatch(request)
                self._count_response(response.status)
                writer.write(response.to_bytes(request.keep_alive))
                await writer.drain()
                if not request.keep_alive:
                    break
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            if task is not None:
                self._conn_tasks.discard(task)
            self._conn_writers.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass

    def _count_response(self, status: int) -> None:
        self.registry.counter(f"serve.responses.{status}").inc()

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _dispatch(self, request: Request) -> Response:
        route, handler, methods = self._route(request.path)
        self.registry.counter(f"serve.requests.{route}").inc()
        if request.method not in methods:
            return _error_response(
                405, f"{request.method} not allowed on {request.path}",
                Allow=", ".join(methods),
            )
        started = self.clock.now()
        try:
            response = await handler(request)
        except ServiceOverloaded as exc:
            retry_after = max(1, round(exc.retry_after))
            response = _error_response(
                429, str(exc), **{"Retry-After": str(retry_after)}
            )
        except HttpError as exc:
            response = _error_response(exc.status, exc.message)
        except BadRequest as exc:
            response = _error_response(400, str(exc))
        except Exception as exc:  # the per-request error boundary
            self.registry.counter("serve.errors").inc()
            response = _error_response(500, f"{type(exc).__name__}: {exc}")
        elapsed = self.clock.now() - started
        # verify handlers stamp the trace id onto the response; passing
        # it as the latency exemplar links a slow bucket back to the
        # exact span tree behind it (surfaced on /debug/events — the
        # text exposition stays deterministic)
        trace_id = response.headers.get("X-Trace-Id", "")
        self._request_seconds.observe(elapsed, exemplar=trace_id or None)
        if elapsed >= self.config.slow_request_seconds:
            self.events.emit(
                "serve.slow_request",
                route=route,
                status=response.status,
                seconds=elapsed,
                trace_id=trace_id,
            )
        return response

    def _route(self, path: str):
        if path == "/verify":
            return "verify", self._handle_verify, ("POST",)
        if path == "/verify-batch":
            return "verify_batch", self._handle_verify_batch, ("POST",)
        if path.startswith("/explain/"):
            return "explain", self._handle_explain, ("GET",)
        if path.startswith("/trace/"):
            return "trace", self._handle_trace, ("GET",)
        if path == "/metrics":
            return "metrics", self._handle_metrics, ("GET",)
        if path == "/healthz":
            return "healthz", self._handle_healthz, ("GET",)
        if path == "/debug/events":
            return "debug_events", self._handle_debug_events, ("GET",)
        if path == "/debug/profile":
            return "debug_profile", self._handle_debug_profile, ("GET",)
        return "unknown", self._handle_unknown, (
            "GET", "POST", "PUT", "DELETE",
        )

    async def _handle_unknown(self, request: Request) -> Response:
        return _error_response(404, f"no route for {request.path}")

    # ------------------------------------------------------------------
    # verification endpoints
    # ------------------------------------------------------------------
    def _next_request_id(self) -> str:
        # event-loop thread only, so a bare counter is race-free
        self._request_counter += 1
        return f"req-{self._request_counter:06d}"

    def _parse_json(self, request: Request) -> object:
        try:
            return json.loads(request.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequest(f"request body is not valid JSON: {exc}")

    def _remember_trace(self, trace) -> str:
        exported = trace_to_dict(trace)
        self._traces[trace.trace_id] = exported
        while len(self._traces) > self.config.trace_cache_size:
            self._traces.popitem(last=False)
        return trace.trace_id

    def _run_verify(self, obj):
        """Worker-thread body: one traced, scope-attributed verify."""
        scope = self.registry.scope()
        with self.registry.activate(scope):
            return self.system.verify(obj, trace=True)

    def _run_verify_batch(self, objects, max_workers, fail_fast):
        return self.system.verify_batch(
            objects, max_workers=max_workers,
            fail_fast=fail_fast, trace=True,
        )

    async def _handle_verify(self, request: Request) -> Response:
        obj = parse_object(
            self._parse_json(request),
            self.system.lake,
            self._next_request_id(),
        )
        async with self.admission.admit():
            loop = asyncio.get_running_loop()
            report = await loop.run_in_executor(
                self._executor, self._run_verify, obj
            )
        trace_id = self._remember_trace(report.trace)
        return _json_response(
            200, report_to_dict(report, trace_id),
            **{"X-Trace-Id": trace_id},
        )

    async def _handle_verify_batch(self, request: Request) -> Response:
        payload = self._parse_json(request)
        request_id = self._next_request_id()
        objects, workers, fail_fast = parse_batch(
            payload,
            self.system.lake,
            request_id,
            self.config.max_batch_objects,
            self.config.batch_max_workers,
        )
        async with self.admission.admit():
            loop = asyncio.get_running_loop()
            batch = await loop.run_in_executor(
                self._executor,
                self._run_verify_batch,
                objects, workers, fail_fast,
            )
        trace_id = self._remember_trace(batch.trace)
        body = {
            "request_id": request_id,
            "trace_id": trace_id,
            "reports": [report_to_dict(r) for r in batch.reports],
            "verified": batch.verified,
            "refuted": batch.refuted,
            "unresolved": batch.unresolved,
            "failed": batch.failed,
            "stats": batch.stats.to_dict() if batch.stats else None,
        }
        return _json_response(200, body, **{"X-Trace-Id": trace_id})

    # ------------------------------------------------------------------
    # lineage + operational endpoints
    # ------------------------------------------------------------------
    async def _handle_explain(self, request: Request) -> Response:
        record_id = request.path[len("/explain/"):]
        try:
            lineage = self.system.provenance.explain(record_id)
        except KeyError:
            return _error_response(404, f"unknown record {record_id!r}")
        return _json_response(
            200, {"record_id": record_id, "lineage": lineage}
        )

    async def _handle_trace(self, request: Request) -> Response:
        trace_id = request.path[len("/trace/"):]
        exported = self._traces.get(trace_id)
        if exported is None:
            return _error_response(404, f"unknown trace {trace_id!r}")
        return _json_response(200, exported)

    async def _handle_metrics(self, request: Request) -> Response:
        body = render_prometheus(self.registry).encode("utf-8")
        return Response(200, body, content_type=CONTENT_TYPE)

    def _histogram_exemplars(self) -> Dict[str, object]:
        """bucket-bound -> {label, value} per histogram that has any.

        Exemplars live on the debug surface only; the ``/metrics``
        exposition stays deterministic and 0.0.4-parseable.
        """
        exemplars: Dict[str, object] = {}
        instruments = self.registry.instruments()
        for name in sorted(instruments):
            instrument = instruments[name]
            if isinstance(instrument, Histogram):
                found = instrument.exemplars()
                if found:
                    exemplars[name] = found
        return exemplars

    async def _handle_debug_events(self, request: Request) -> Response:
        raw_n = request.query.get("n")
        try:
            n = int(raw_n) if raw_n is not None else None
        except ValueError:
            raise BadRequest(f"n must be an integer, got {raw_n!r}")
        if n is not None and n < 0:
            raise BadRequest(f"n must be >= 0, got {n}")
        kind = request.query.get("kind")
        fmt = request.query.get("format", "json")
        if fmt == "jsonl":
            body = self.events.to_jsonl(n=n, kind=kind).encode("utf-8")
            return Response(
                200, body, content_type="application/x-ndjson"
            )
        if fmt != "json":
            raise BadRequest(
                f"format must be 'json' or 'jsonl', got {fmt!r}"
            )
        payload = self.events.to_dict(n=n, kind=kind)
        payload["exemplars"] = self._histogram_exemplars()
        return _json_response(200, payload)

    async def _handle_debug_profile(self, request: Request) -> Response:
        raw_seconds = request.query.get("seconds", "1")
        try:
            seconds = float(raw_seconds)
        except ValueError:
            raise BadRequest(
                f"seconds must be a number, got {raw_seconds!r}"
            )
        if seconds <= 0:
            raise BadRequest(f"seconds must be > 0, got {seconds:g}")
        seconds = min(seconds, self.config.debug_profile_max_seconds)

        def sample() -> tuple:
            sampler = StackSampler(
                interval=self.config.profile_sample_interval
            )
            sampler.sample_for(seconds)
            return sampler.collapsed(), sampler.sample_count

        # sampling sleeps for the full window — run it on a worker
        # thread (it occupies one verify slot), never the event loop
        loop = asyncio.get_running_loop()
        collapsed, samples = await loop.run_in_executor(
            self._executor, sample
        )
        return Response(
            200,
            collapsed.encode("utf-8"),
            content_type="text/plain; charset=utf-8",
            headers={
                "X-Profile-Samples": str(samples),
                "X-Profile-Seconds": f"{seconds:g}",
            },
        )

    async def _handle_healthz(self, request: Request) -> Response:
        return _json_response(200, {
            "status": "ok",
            "lake": self.system.lake.name,
            "inflight": self.admission.inflight,
            "queued": self.admission.queued,
            "max_concurrency": self.config.max_concurrency,
            "max_queue": self.config.max_queue,
        })
