"""Run a :class:`VerificationService` on its own thread + event loop.

Tests, benchmarks, and the CLI demo all need the same shape: start a
server, know when it is actually accepting, talk to it from the calling
thread, tear it down cleanly.  ``ServerThread`` packages that —
``start()`` blocks until the socket is bound (re-raising any startup
fault in the caller), ``stop()`` is idempotent and joins the thread.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Optional, Tuple

from repro.serve.app import VerificationService


class ServerThread:
    """A started service on a background event loop."""

    def __init__(
        self, service: VerificationService, start_timeout: float = 30.0
    ) -> None:
        self.service = service
        self.start_timeout = start_timeout
        self._thread: Optional[threading.Thread] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._ready = threading.Event()
        self._stopped = threading.Event()
        self._startup_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        stop_signal = asyncio.Event()
        self._stop_signal = stop_signal
        try:
            await self.service.start()
        except BaseException as exc:  # surface in start() on the caller
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        await stop_signal.wait()
        await self.service.stop()
        self._stopped.set()

    # ------------------------------------------------------------------
    def start(self) -> "ServerThread":
        """Spawn the loop thread; returns once the socket is bound."""
        if self._thread is not None:
            raise RuntimeError("server thread already started")
        self._thread = threading.Thread(
            target=self._run, name="serve-loop", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(self.start_timeout):
            raise RuntimeError("server did not start in time")
        if self._startup_error is not None:
            self._thread.join()
            raise self._startup_error
        return self

    def stop(self) -> None:
        """Stop the service and join the loop thread (idempotent)."""
        if self._thread is None:
            return
        if self._loop is not None and not self._stopped.is_set():
            if self._startup_error is None:
                self._loop.call_soon_threadsafe(self._stop_signal.set)
        self._thread.join()
        self._thread = None

    def join(self, timeout: Optional[float] = None) -> None:
        """Block until the server thread exits (foreground serving)."""
        if self._thread is not None:
            self._thread.join(timeout)

    @property
    def address(self) -> Tuple[str, int]:
        host, port = self.service.address
        return host, port

    def __enter__(self) -> "ServerThread":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
