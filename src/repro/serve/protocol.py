"""Request/response codecs between HTTP JSON and pipeline objects.

The wire shapes (see docs/serving.md):

``POST /verify`` body::

    {"kind": "claim", "text": "...", "context": "...?"}
    {"kind": "tuple", "table_id": "T", "row": 0,
     "column": "votes", "value": "123,456"?}

(a tuple request without ``value`` verifies the cell the lake already
holds; with ``value`` it verifies the imputed replacement, exactly like
``repro verify-tuple``).  ``object_id`` is optional everywhere — the
server assigns a deterministic ``req-NNNNNN`` id when absent.

``POST /verify-batch`` body::

    {"objects": [<verify bodies>...], "max_workers": 2?,
     "fail_fast": false?}

Anything malformed raises :class:`BadRequest`, which the server maps to
a ``400`` with the message in the JSON error body.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.core.pipeline import VerificationReport
from repro.datalake.lake import DataLake
from repro.verify.objects import ClaimObject, DataObject, TupleObject


class BadRequest(Exception):
    """The request body does not describe a verifiable object."""


def _require_str(payload: Dict, key: str) -> str:
    value = payload.get(key)
    if not isinstance(value, str) or not value:
        raise BadRequest(f"field {key!r} must be a non-empty string")
    return value


def _optional_str(payload: Dict, key: str, default: str = "") -> str:
    value = payload.get(key, default)
    if not isinstance(value, str):
        raise BadRequest(f"field {key!r} must be a string")
    return value


def parse_object(
    payload: object, lake: DataLake, default_object_id: str
) -> DataObject:
    """One verify body -> the DataObject the pipeline runs on."""
    if not isinstance(payload, dict):
        raise BadRequest("request body must be a JSON object")
    kind = payload.get("kind")
    object_id = _optional_str(payload, "object_id", default_object_id)
    if not object_id:
        object_id = default_object_id
    if kind == "claim":
        return ClaimObject(
            object_id,
            _require_str(payload, "text"),
            context=_optional_str(payload, "context"),
        )
    if kind == "tuple":
        table_id = _require_str(payload, "table_id")
        row_index = payload.get("row")
        if not isinstance(row_index, int) or isinstance(row_index, bool):
            raise BadRequest("field 'row' must be an integer")
        try:
            table = lake.table(table_id)
        except KeyError as exc:
            raise BadRequest(f"unknown table {table_id!r}") from exc
        if not 0 <= row_index < table.num_rows:
            raise BadRequest(
                f"row {row_index} out of range for table {table_id!r} "
                f"({table.num_rows} rows)"
            )
        column = _require_str(payload, "column")
        if column not in table.columns:
            raise BadRequest(
                f"unknown column {column!r} in table {table_id!r}"
            )
        row = table.row(row_index)
        if "value" in payload:
            row = row.replace_value(column, _require_str(payload, "value"))
        return TupleObject(object_id, row, attribute=column)
    raise BadRequest("field 'kind' must be 'claim' or 'tuple'")


def parse_batch(
    payload: object,
    lake: DataLake,
    id_prefix: str,
    max_objects: int,
    max_workers_cap: int,
) -> Tuple[List[DataObject], int, bool]:
    """``/verify-batch`` body -> (objects, max_workers, fail_fast)."""
    if not isinstance(payload, dict):
        raise BadRequest("request body must be a JSON object")
    entries = payload.get("objects")
    if not isinstance(entries, list):
        raise BadRequest("field 'objects' must be a list")
    if len(entries) > max_objects:
        raise BadRequest(
            f"batch of {len(entries)} objects exceeds the limit of "
            f"{max_objects}"
        )
    objects = [
        parse_object(entry, lake, f"{id_prefix}-{position:04d}")
        for position, entry in enumerate(entries)
    ]
    workers = payload.get("max_workers", 1)
    if not isinstance(workers, int) or isinstance(workers, bool):
        raise BadRequest("field 'max_workers' must be an integer")
    if workers < 1:
        raise BadRequest(f"max_workers must be >= 1, got {workers}")
    workers = min(workers, max_workers_cap)
    fail_fast = payload.get("fail_fast", False)
    if not isinstance(fail_fast, bool):
        raise BadRequest("field 'fail_fast' must be a boolean")
    return objects, workers, fail_fast


def report_to_dict(
    report: VerificationReport,
    trace_id: Optional[str] = None,
) -> Dict[str, object]:
    """A verification report as the JSON the service responds with."""
    payload: Dict[str, object] = {
        "object_id": report.object_id,
        "status": report.status,
        "verdict": report.final_verdict.name,
        "margin": report.margin,
        "record_id": report.record_id,
        "evidence_ids": list(report.evidence_ids),
        "outcomes": [
            {
                "evidence_id": outcome.evidence_id,
                "verifier": outcome.verifier,
                "verdict": outcome.verdict.name,
                "explanation": outcome.explanation,
            }
            for outcome in report.outcomes
        ],
    }
    if report.error:
        payload["error"] = report.error
    if trace_id is not None:
        payload["trace_id"] = trace_id
    return payload
