"""tuple2vec / text2vec facades.

The paper cites tuple-to-vec (RPT) and text-to-vec (BERT) as the
embedding front ends of the semantic index.  These helpers embed lake
instances with any vectorizer exposing ``transform_tokens``; tuples weight
schema tokens lower than value tokens, matching the intuition that values
identify a tuple while column names identify only its table.
"""

from __future__ import annotations

from typing import List, Protocol, Sequence

import numpy as np

from repro.datalake.serialize import serialize_table
from repro.datalake.types import Row, Table
from repro.text import analyze


class TokenVectorizer(Protocol):
    """Anything that can embed a token sequence (duck-typed)."""

    def transform_tokens(self, tokens: Sequence[str]) -> np.ndarray:  # pragma: no cover
        ...


def embed_row(
    row: Row,
    vectorizer: TokenVectorizer,
    schema_weight: float = 0.5,
) -> np.ndarray:
    """Embed a tuple: value tokens at weight 1, schema tokens down-weighted.

    Down-weighting is implemented by token repetition in the value stream
    (integer weights only would lose granularity, so we embed the two
    streams separately and blend).
    """
    value_tokens: List[str] = []
    for value in row.values:
        value_tokens.extend(analyze(value))
    schema_tokens: List[str] = []
    for column in row.columns:
        schema_tokens.extend(analyze(column))

    value_vec = vectorizer.transform_tokens(value_tokens)
    schema_vec = vectorizer.transform_tokens(schema_tokens)
    blended = value_vec + schema_weight * schema_vec
    norm = np.linalg.norm(blended)
    if norm > 0:
        blended /= norm
    return blended


def embed_table(
    table: Table,
    vectorizer: TokenVectorizer,
    max_rows: int = 30,
) -> np.ndarray:
    """Embed a whole table from its serialized form (caption + header + rows)."""
    return vectorizer.transform_tokens(
        analyze(serialize_table(table, max_rows=max_rows))
    )


def embed_text(text: str, vectorizer: TokenVectorizer) -> np.ndarray:
    """Embed raw text with the shared analysis chain."""
    return vectorizer.transform_tokens(analyze(text))
