"""Dense vectorizers built on signed feature hashing.

Feature hashing maps an unbounded vocabulary into a fixed-dimension dense
vector without a fitting pass; the signed variant keeps expected inner
products unbiased.  Token seeds are derived with BLAKE2 so embeddings are
stable across processes (Python's builtin ``hash`` is salted).
"""

from __future__ import annotations

import hashlib
import math
from collections import Counter
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.text import analyze


def _token_digest(token: str, salt: str = "") -> int:
    """Deterministic 64-bit digest of a token."""
    digest = hashlib.blake2b(
        (salt + token).encode("utf-8"), digest_size=8
    ).digest()
    return int.from_bytes(digest, "little")


def _hash_index_sign(token: str, dim: int, salt: str = "") -> tuple:
    """(bucket index, +/-1 sign) for a token under signed hashing."""
    value = _token_digest(token, salt)
    index = value % dim
    sign = 1.0 if (value >> 63) & 1 else -1.0
    return index, sign


class HashingVectorizer:
    """Stateless signed-feature-hashing vectorizer.

    Produces L2-normalized vectors; tokens are weighted by sublinear term
    frequency (1 + log tf).
    """

    def __init__(self, dim: int = 256, salt: str = "hv") -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = dim
        self.salt = salt

    def transform_tokens(self, tokens: Sequence[str]) -> np.ndarray:
        """Embed a pre-tokenized sequence."""
        vec = np.zeros(self.dim, dtype=np.float64)
        if not tokens:
            return vec
        for token, count in Counter(tokens).items():
            index, sign = _hash_index_sign(token, self.dim, self.salt)
            vec[index] += sign * (1.0 + math.log(count))
        norm = np.linalg.norm(vec)
        if norm > 0:
            vec /= norm
        return vec

    def transform(self, text: str) -> np.ndarray:
        """Embed raw text via the standard analysis chain."""
        return self.transform_tokens(analyze(text))

    def transform_many(self, texts: Iterable[str]) -> np.ndarray:
        """Embed a batch of texts into a (n, dim) matrix."""
        rows = [self.transform(text) for text in texts]
        if not rows:
            return np.zeros((0, self.dim), dtype=np.float64)
        return np.vstack(rows)


class TfidfVectorizer:
    """Corpus-fit TF-IDF weighting, projected into a dense space by hashing.

    Fitting records document frequencies; transforming weights each token
    by ``(1 + log tf) * idf`` before signed hashing.  Unknown tokens get
    the maximum idf (they are maximally discriminative).
    """

    def __init__(self, dim: int = 256, salt: str = "tfidf") -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = dim
        self.salt = salt
        self._doc_freq: Dict[str, int] = {}
        self._num_docs = 0

    @property
    def is_fitted(self) -> bool:
        return self._num_docs > 0

    def fit(self, texts: Iterable[str]) -> "TfidfVectorizer":
        """Record document frequencies over ``texts``."""
        for text in texts:
            self._num_docs += 1
            for token in sorted(set(analyze(text))):
                self._doc_freq[token] = self._doc_freq.get(token, 0) + 1
        return self

    def idf(self, token: str) -> float:
        """Smoothed inverse document frequency of ``token``."""
        df = self._doc_freq.get(token, 0)
        return math.log((1 + self._num_docs) / (1 + df)) + 1.0

    def transform(self, text: str) -> np.ndarray:
        """Embed raw text; requires :meth:`fit` to have been called."""
        if not self.is_fitted:
            raise RuntimeError("TfidfVectorizer.transform called before fit")
        vec = np.zeros(self.dim, dtype=np.float64)
        tokens = analyze(text)
        if not tokens:
            return vec
        for token, count in Counter(tokens).items():
            weight = (1.0 + math.log(count)) * self.idf(token)
            index, sign = _hash_index_sign(token, self.dim, self.salt)
            vec[index] += sign * weight
        norm = np.linalg.norm(vec)
        if norm > 0:
            vec /= norm
        return vec

    def transform_many(self, texts: Iterable[str]) -> np.ndarray:
        """Embed a batch of texts into a (n, dim) matrix."""
        rows = [self.transform(text) for text in texts]
        if not rows:
            return np.zeros((0, self.dim), dtype=np.float64)
        return np.vstack(rows)
