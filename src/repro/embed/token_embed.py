"""Per-token embeddings for late-interaction (ColBERT-style) scoring.

ColBERT compares *each token* of the query to *each token* of a document.
Its power as a reranker comes from that interaction structure, not from
any one encoder — so we embed each token from its character n-grams
(fastText-style), which makes morphologically close tokens ("elections" /
"election", "1,234" / "1234") near-neighbours while unrelated tokens stay
near-orthogonal in a high-dimensional hashed space.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence

import numpy as np

from repro.text import analyze
from repro.text.similarity import ngrams


def _feature_vector(feature: str, dim: int, salt: str) -> np.ndarray:
    """Deterministic dense unit vector for one n-gram feature."""
    digest = hashlib.blake2b((salt + feature).encode("utf-8"), digest_size=8).digest()
    seed = int.from_bytes(digest, "little")
    rng = np.random.default_rng(seed)
    vec = rng.standard_normal(dim)
    return vec / np.linalg.norm(vec)


class TokenEmbedder:
    """Character n-gram token embedder with an in-process feature cache."""

    def __init__(self, dim: int = 64, min_n: int = 3, max_n: int = 4, salt: str = "tok") -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if min_n > max_n:
            raise ValueError(f"min_n ({min_n}) must be <= max_n ({max_n})")
        self.dim = dim
        self.min_n = min_n
        self.max_n = max_n
        self.salt = salt
        self._feature_cache: dict = {}

    def _feature(self, feature: str) -> np.ndarray:
        vec = self._feature_cache.get(feature)
        if vec is None:
            vec = _feature_vector(feature, self.dim, self.salt)
            self._feature_cache[feature] = vec
        return vec

    def embed_token(self, token: str) -> np.ndarray:
        """Unit vector for one token: mean of its n-gram feature vectors
        plus a whole-token feature (so exact matches dominate)."""
        features: List[str] = [f"<{token}>"]
        for n in range(self.min_n, self.max_n + 1):
            features.extend(sorted(ngrams(token, n)))
        acc = np.zeros(self.dim, dtype=np.float64)
        for feature in features:
            acc += self._feature(feature)
        norm = np.linalg.norm(acc)
        if norm > 0:
            acc /= norm
        return acc

    def embed_tokens(self, tokens: Sequence[str]) -> np.ndarray:
        """(len(tokens), dim) matrix of token embeddings."""
        if not tokens:
            return np.zeros((0, self.dim), dtype=np.float64)
        return np.vstack([self.embed_token(token) for token in tokens])

    def embed_text(self, text: str) -> np.ndarray:
        """Token-embedding matrix of raw text under the analysis chain."""
        return self.embed_tokens(analyze(text))
