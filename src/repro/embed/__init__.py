"""Embedding substrate for the semantic index and rerankers.

The paper converts tuples and chunked text to vectors with tuple2vec /
BERT and indexes them with Faiss.  Offline, we substitute deterministic
embedders with the same contract: a text (or tuple) in, a dense unit
vector out, where cosine similarity tracks lexical-semantic overlap.

* :class:`HashingVectorizer` — sparse-to-dense feature hashing (signed).
* :class:`TfidfVectorizer`   — corpus-fit TF-IDF projected by hashing.
* :class:`CooccurrenceEmbedder` — PPMI co-occurrence statistics projected
  to a dense space, giving distributional ("semantic") similarity.
* :class:`TokenEmbedder`     — per-token vectors from character n-grams,
  used by the ColBERT-style late-interaction reranker.
* :func:`embed_row` / :func:`embed_text` — tuple2vec / text2vec facades.
"""

from repro.embed.chunker import Chunk, chunk_document, chunk_text
from repro.embed.cooccurrence import CooccurrenceEmbedder
from repro.embed.token_embed import TokenEmbedder
from repro.embed.tuple2vec import embed_row, embed_table, embed_text
from repro.embed.vectorizers import HashingVectorizer, TfidfVectorizer

__all__ = [
    "Chunk",
    "CooccurrenceEmbedder",
    "HashingVectorizer",
    "TfidfVectorizer",
    "TokenEmbedder",
    "chunk_document",
    "chunk_text",
    "embed_row",
    "embed_table",
    "embed_text",
]
