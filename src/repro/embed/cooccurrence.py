"""Distributional embeddings from co-occurrence statistics.

This is the "semantic" embedder standing in for BERT: tokens that appear
in similar contexts receive similar vectors, so documents sharing *related*
(not merely identical) vocabulary score high under cosine.  The
construction is classical — windowed co-occurrence counts, PPMI
reassociation, then a seeded Gaussian random projection to a dense space
(Johnson-Lindenstrauss preserves the PPMI geometry in expectation).
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.text import analyze


class CooccurrenceEmbedder:
    """PPMI co-occurrence embeddings with a random-projection backend."""

    def __init__(
        self,
        dim: int = 128,
        window: int = 4,
        min_count: int = 2,
        seed: int = 7,
    ) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        if window <= 0:
            raise ValueError(f"window must be positive, got {window}")
        self.dim = dim
        self.window = window
        self.min_count = min_count
        self.seed = seed
        self._token_vectors: Dict[str, np.ndarray] = {}
        self._fitted = False

    @property
    def is_fitted(self) -> bool:
        return self._fitted

    @property
    def vocabulary(self) -> List[str]:
        return sorted(self._token_vectors)

    def fit(self, texts: Iterable[str]) -> "CooccurrenceEmbedder":
        """Build token vectors from the co-occurrence structure of ``texts``."""
        token_count: Counter = Counter()
        pair_count: Dict[str, Counter] = defaultdict(Counter)
        total_pairs = 0
        for text in texts:
            tokens = analyze(text)
            token_count.update(tokens)
            for i, token in enumerate(tokens):
                lo = max(0, i - self.window)
                hi = min(len(tokens), i + self.window + 1)
                for j in range(lo, hi):
                    if j == i:
                        continue
                    pair_count[token][tokens[j]] += 1
                    total_pairs += 1
        vocab = sorted(
            token for token, count in token_count.items()
            if count >= self.min_count
        )
        if not vocab or total_pairs == 0:
            self._token_vectors = {}
            self._fitted = True
            return self

        context_index = {token: i for i, token in enumerate(vocab)}
        context_marginal = np.zeros(len(vocab), dtype=np.float64)
        for token in vocab:
            for context, count in pair_count[token].items():
                if context in context_index:
                    context_marginal[context_index[context]] += count
        token_marginal = {
            token: sum(
                count
                for context, count in pair_count[token].items()
                if context in context_index
            )
            for token in vocab
        }
        grand_total = context_marginal.sum()
        if grand_total == 0:
            self._token_vectors = {}
            self._fitted = True
            return self

        rng = np.random.default_rng(self.seed)
        projection = rng.standard_normal((len(vocab), self.dim)) / math.sqrt(self.dim)

        vectors: Dict[str, np.ndarray] = {}
        for token in vocab:
            row = np.zeros(len(vocab), dtype=np.float64)
            t_marg = token_marginal[token]
            if t_marg == 0:
                continue
            for context, count in pair_count[token].items():
                idx = context_index.get(context)
                if idx is None:
                    continue
                c_marg = context_marginal[idx]
                pmi = math.log(
                    (count * grand_total) / (t_marg * c_marg)
                )
                if pmi > 0:
                    row[idx] = pmi
            dense = row @ projection
            norm = np.linalg.norm(dense)
            if norm > 0:
                vectors[token] = dense / norm
        self._token_vectors = vectors
        self._fitted = True
        return self

    def token_vector(self, token: str) -> Optional[np.ndarray]:
        """Vector of a single (analyzed) token; None when out of vocabulary."""
        return self._token_vectors.get(token)

    def transform_tokens(self, tokens: Sequence[str]) -> np.ndarray:
        """Mean-of-token-vectors document embedding, L2 normalized."""
        if not self._fitted:
            raise RuntimeError("CooccurrenceEmbedder.transform called before fit")
        acc = np.zeros(self.dim, dtype=np.float64)
        hits = 0
        for token in tokens:
            vec = self._token_vectors.get(token)
            if vec is not None:
                acc += vec
                hits += 1
        if hits == 0:
            return acc
        acc /= hits
        norm = np.linalg.norm(acc)
        if norm > 0:
            acc /= norm
        return acc

    def transform(self, text: str) -> np.ndarray:
        """Embed raw text via the standard analysis chain."""
        return self.transform_tokens(analyze(text))

    def transform_many(self, texts: Iterable[str]) -> np.ndarray:
        """Embed a batch of texts into a (n, dim) matrix."""
        rows = [self.transform(text) for text in texts]
        if not rows:
            return np.zeros((0, self.dim), dtype=np.float64)
        return np.vstack(rows)
