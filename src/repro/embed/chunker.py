"""Text chunking for the semantic index.

The paper embeds "chunked text files"; this chunker splits a document
into sentence-aligned passages with bounded token length and optional
overlap, each addressable as ``doc_id#cN``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.datalake.types import TextDocument
from repro.text import sentences, tokenize


@dataclass(frozen=True)
class Chunk:
    """A passage of a document."""

    doc_id: str
    chunk_index: int
    text: str

    @property
    def chunk_id(self) -> str:
        return f"{self.doc_id}#c{self.chunk_index}"


def chunk_text(
    text: str,
    doc_id: str = "doc",
    max_tokens: int = 64,
    overlap_sentences: int = 1,
) -> List[Chunk]:
    """Split ``text`` into sentence-aligned chunks of <= ``max_tokens`` tokens.

    Adjacent chunks share ``overlap_sentences`` trailing sentences so that
    facts straddling a boundary stay retrievable.
    """
    if max_tokens <= 0:
        raise ValueError(f"max_tokens must be positive, got {max_tokens}")
    if overlap_sentences < 0:
        raise ValueError(f"overlap_sentences must be >= 0, got {overlap_sentences}")

    sents = sentences(text)
    if not sents:
        return []

    # tokenize each sentence exactly once; overlap windows reuse counts
    counts = [len(tokenize(sent)) for sent in sents]
    chunks: List[Chunk] = []
    current: List[str] = []
    current_counts: List[int] = []
    current_tokens = 0
    for sent, sent_tokens in zip(sents, counts):
        if current and current_tokens + sent_tokens > max_tokens:
            chunks.append(Chunk(doc_id, len(chunks), " ".join(current)))
            if overlap_sentences:
                current = current[-overlap_sentences:]
                current_counts = current_counts[-overlap_sentences:]
            else:
                current = []
                current_counts = []
            current_tokens = sum(current_counts)
        current.append(sent)
        current_counts.append(sent_tokens)
        current_tokens += sent_tokens
    if current:
        chunks.append(Chunk(doc_id, len(chunks), " ".join(current)))
    return chunks


def chunk_document(
    doc: TextDocument,
    max_tokens: int = 64,
    overlap_sentences: int = 1,
) -> List[Chunk]:
    """Chunk a lake document, prefixing the title onto the first chunk."""
    chunks = chunk_text(
        doc.text,
        doc_id=doc.doc_id,
        max_tokens=max_tokens,
        overlap_sentences=overlap_sentences,
    )
    if chunks and doc.title:
        first = chunks[0]
        chunks[0] = Chunk(first.doc_id, first.chunk_index, f"{doc.title}. {first.text}")
    return chunks
