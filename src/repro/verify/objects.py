"""Generated data objects — the things VerifAI verifies.

Per Section 2, a *data object* is something a generative model produced:
a (partially) generated tuple, or generated text (a claim/answer).  The
optional verification metadata ("the verification requirement could be
... on a specific column") lives on the object as ``attribute``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Union

from repro.datalake.serialize import serialize_row
from repro.datalake.types import Row


@dataclass(frozen=True)
class TupleObject:
    """A generated/imputed tuple, optionally scoped to one attribute."""

    object_id: str
    row: Row
    attribute: Optional[str] = None

    def query_text(self) -> str:
        """Serialized form used for retrieval and prompting."""
        return serialize_row(self.row)


@dataclass(frozen=True)
class ClaimObject:
    """Generated text to verify (a claim or an answer sentence)."""

    object_id: str
    text: str
    context: str = ""

    def query_text(self) -> str:
        """Text used for retrieval (claim plus its scope context)."""
        if self.context:
            return f"{self.text} ({self.context})"
        return self.text


DataObject = Union[TupleObject, ClaimObject]
