"""The one-size-fits-all LLM verifier.

Builds the paper's verification prompt, sends it to the (simulated)
chat model, and parses the free-text verdict.  This is the default
Verifier in VerifAI: strong generalization — especially at recognizing
NOT_RELATED evidence — at the cost of noisier multi-step table
arithmetic.
"""

from __future__ import annotations

from repro.datalake.serialize import serialize_instance
from repro.datalake.types import DataInstance
from repro.llm.model import SimulatedLLM
from repro.llm.prompts import parse_verification_response, verification_prompt
from repro.verify.base import VerificationOutcome, Verifier
from repro.verify.objects import ClaimObject, DataObject, TupleObject
from repro.verify.verdict import Verdict


class LLMVerifier(Verifier):
    """ChatGPT-style verifier over any (object, evidence) pair."""

    name = "llm"

    def __init__(self, llm: SimulatedLLM) -> None:
        self.llm = llm

    def supports(self, obj: DataObject, evidence: DataInstance) -> bool:
        """The generic model accepts every pair type."""
        return True

    def verify(self, obj: DataObject, evidence: DataInstance) -> VerificationOutcome:
        evidence_text = serialize_instance(evidence)
        if isinstance(obj, TupleObject):
            prompt = verification_prompt(
                evidence=evidence_text,
                data=obj.query_text(),
                attribute=obj.attribute,
            )
        else:
            assert isinstance(obj, ClaimObject)
            prompt = verification_prompt(
                evidence=evidence_text,
                data=obj.text,
                context=obj.context or None,
            )
        response = self.llm.chat(prompt)
        verdict_text, explanation = parse_verification_response(response)
        verdict = Verdict.from_string(verdict_text)
        if verdict is None:
            # the model failed to follow the output format — treat as
            # unusable evidence rather than guessing a direction
            verdict = Verdict.NOT_RELATED
            explanation = f"unparseable response: {response[:120]}"
        return self._outcome(verdict, explanation, evidence)
