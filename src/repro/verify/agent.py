"""The Agent: chooses which Verifier handles a (object, evidence) pair.

Section 3.3: "It utilizes multiple Verifiers, each tailored to a
specific task.  An Agent decides which Verifier to use for a given
task."  Local verifiers are preferred when they support the pair (data
privacy + in-distribution accuracy); the generic LLM verifier is the
fallback.  ``prefer_local=False`` flips the policy, which is how the
Table 2 comparison runs both sides.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.datalake.types import DataInstance
from repro.verify.base import VerificationOutcome, Verifier
from repro.verify.objects import DataObject


class VerifierAgent:
    """Dispatch policy over a pool of verifiers."""

    def __init__(
        self,
        local_verifiers: Sequence[Verifier] = (),
        fallback: Optional[Verifier] = None,
        prefer_local: bool = True,
    ) -> None:
        if fallback is None and not local_verifiers:
            raise ValueError("agent needs at least one verifier")
        self.local_verifiers: List[Verifier] = list(local_verifiers)
        self.fallback = fallback
        self.prefer_local = prefer_local

    def choose(self, obj: DataObject, evidence: DataInstance) -> Verifier:
        """The verifier that will handle this pair."""
        if self.prefer_local:
            for verifier in self.local_verifiers:
                if verifier.supports(obj, evidence):
                    return verifier
        if self.fallback is not None and self.fallback.supports(obj, evidence):
            return self.fallback
        # fallback unavailable: last resort is any local verifier that fits
        for verifier in self.local_verifiers:
            if verifier.supports(obj, evidence):
                return verifier
        raise LookupError(
            f"no verifier supports ({type(obj).__name__}, "
            f"{type(evidence).__name__})"
        )

    def verify(self, obj: DataObject, evidence: DataInstance) -> VerificationOutcome:
        """Dispatch and verify one pair."""
        return self.choose(obj, evidence).verify(obj, evidence)

    def verify_all(
        self, obj: DataObject, evidence_list: Sequence[DataInstance]
    ) -> List[VerificationOutcome]:
        """Verify ``obj`` against every retrieved instance."""
        return [self.verify(obj, evidence) for evidence in evidence_list]
