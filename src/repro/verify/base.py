"""Verifier interface and outcome record."""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Optional

from repro.datalake.types import DataInstance, instance_id_of
from repro.verify.objects import DataObject
from repro.verify.verdict import Verdict


class VerificationError(RuntimeError):
    """A verifier (or a stage feeding it) failed on one object.

    The batch engine's per-object error boundary treats this — like any
    other ``Exception`` — as a per-object failure: the object's report
    comes back ``FAILED`` and its provenance record is finalized with
    the error instead of the whole campaign aborting.  Raise it from
    custom verifiers to signal a fault that is *about the input*, and
    therefore worth a bounded retry when transient.
    """


@dataclass(frozen=True)
class VerificationOutcome:
    """Result of one verify(g, x) call, with its explanation trail."""

    verdict: Verdict
    explanation: str
    verifier: str
    evidence_id: str

    @property
    def is_verified(self) -> bool:
        return self.verdict is Verdict.VERIFIED

    @property
    def is_refuted(self) -> bool:
        return self.verdict is Verdict.REFUTED


class Verifier(abc.ABC):
    """Maps a (data object, data instance) pair to a ternary verdict."""

    name: str = "verifier"

    @abc.abstractmethod
    def verify(self, obj: DataObject, evidence: DataInstance) -> VerificationOutcome:
        """Verify ``obj`` against one retrieved ``evidence`` instance."""

    @abc.abstractmethod
    def supports(self, obj: DataObject, evidence: DataInstance) -> bool:
        """Whether this verifier handles the given pair type."""

    def _outcome(
        self, verdict: Verdict, explanation: str, evidence: DataInstance
    ) -> VerificationOutcome:
        return VerificationOutcome(
            verdict=verdict,
            explanation=explanation,
            verifier=self.name,
            evidence_id=instance_id_of(evidence),
        )
