"""PASTA-style local (text, table) verifier.

PASTA (Gu et al., EMNLP 2022) is pre-trained on sentence-table cloze
tasks over table operations and fine-tuned for binary fact verification.
The stand-in mirrors its operating profile:

* **in-distribution strength** — claims phrased in the canonical
  template grammar parse into table operations that are executed
  *exactly* (no arithmetic slips; a specialist model beats a generalist
  on its training distribution);
* **binary output** — only true/false; it cannot say NOT_RELATED;
* **OOD brittleness** — claims outside the strict grammar, or evidence
  tables the claim cannot be grounded in, fall back to a lexical
  entailment heuristic (high token overlap -> "true"), which is how a
  binary model trained only on relevant tables behaves on irrelevant
  ones.
"""

from __future__ import annotations

from repro.claims.engine import TableQueryEngine
from repro.claims.parser import ClaimParser
from repro.datalake.types import DataInstance, Table
from repro.llm.knowledge import rng_for
from repro.text import analyze
from repro.verify.base import VerificationOutcome, Verifier
from repro.verify.objects import ClaimObject, DataObject
from repro.verify.verdict import Verdict


class PastaVerifier(Verifier):
    """Table-operations-aware fact verifier (binary)."""

    name = "pasta"

    def __init__(
        self,
        lexical_true_threshold: float = 0.7,
        model_noise: float = 0.03,
        seed: int = 7,
    ) -> None:
        if not 0.0 <= lexical_true_threshold <= 1.0:
            raise ValueError("lexical_true_threshold must be in [0, 1]")
        if not 0.0 <= model_noise <= 1.0:
            raise ValueError("model_noise must be in [0, 1]")
        self.parser = ClaimParser(strict=True)
        self.engine = TableQueryEngine()
        self.lexical_true_threshold = lexical_true_threshold
        self.model_noise = model_noise
        self.seed = seed

    def supports(self, obj: DataObject, evidence: DataInstance) -> bool:
        """PASTA handles (text, table) pairs only."""
        return isinstance(obj, ClaimObject) and isinstance(evidence, Table)

    def _lexical_fallback(self, claim_text: str, table: Table) -> Verdict:
        """OOD behaviour: entailment-by-overlap, forced binary."""
        claim_tokens = set(analyze(claim_text))
        if not claim_tokens:
            return Verdict.REFUTED
        table_tokens = set(analyze(table.caption))
        for column in table.columns:
            table_tokens.update(analyze(column))
        for row in table.rows:
            for cell in row:
                table_tokens.update(analyze(cell))
        coverage = len(claim_tokens & table_tokens) / len(claim_tokens)
        if coverage >= self.lexical_true_threshold:
            return Verdict.VERIFIED
        return Verdict.REFUTED

    def verify(self, obj: DataObject, evidence: DataInstance) -> VerificationOutcome:
        if not self.supports(obj, evidence):
            raise TypeError(
                f"{self.name} verifies (text, table) pairs, got "
                f"({type(obj).__name__}, {type(evidence).__name__})"
            )
        assert isinstance(obj, ClaimObject) and isinstance(evidence, Table)
        rng = rng_for(self.seed, "pasta", obj.text, evidence.table_id)
        spec = self.parser.parse(obj.text)
        if spec is None:
            verdict = self._lexical_fallback(obj.text, evidence)
            return self._outcome(
                verdict,
                "claim outside the template grammar; lexical entailment "
                f"heuristic -> {verdict}",
                evidence,
            )
        result = self.engine.execute(spec, evidence)
        if result.verdict is None:
            verdict = self._lexical_fallback(obj.text, evidence)
            return self._outcome(
                verdict,
                "claim not groundable in this table; lexical entailment "
                f"heuristic -> {verdict} ({'; '.join(result.trace)})",
                evidence,
            )
        verdict_bool = result.verdict
        if rng.random() < self.model_noise:
            verdict_bool = not verdict_bool  # residual model error
        verdict = Verdict.VERIFIED if verdict_bool else Verdict.REFUTED
        return self._outcome(verdict, "; ".join(result.trace), evidence)
