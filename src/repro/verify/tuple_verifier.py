"""Local (tuple, tuple) verifier — the fine-tuned RoBERTa stand-in.

RetClean fine-tunes RoBERTa to decide whether a retrieved tuple supports
an imputed tuple; the paper reports it "comparable to ChatGPT" on this
pair type.  The stand-in is a logistic-regression classifier over
engineered pair features, trained on synthetically labelled pairs
generated from lake tables (positive: the true value; negative: a
corrupted value) — the same self-supervision recipe such models use.

Like its neural counterpart it is binary at heart; a relatedness gate
(identity-token overlap) produces NOT_RELATED before classification.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.datalake.types import DataInstance, Row, Table
from repro.text import analyze, normalize
from repro.text.numbers import parse_number
from repro.text.similarity import jaccard, levenshtein_ratio
from repro.verify.base import VerificationOutcome, Verifier
from repro.verify.objects import DataObject, TupleObject
from repro.verify.verdict import Verdict

_NUM_FEATURES = 5


def _value_similarity(a: str, b: str) -> float:
    num_a, num_b = parse_number(a), parse_number(b)
    if num_a is not None and num_b is not None:
        if num_a == num_b:
            return 1.0
        denom = max(abs(num_a), abs(num_b), 1.0)
        return max(0.0, 1.0 - abs(num_a - num_b) / denom)
    return levenshtein_ratio(normalize(a), normalize(b))


def pair_features(obj: TupleObject, evidence: Row) -> np.ndarray:
    """Feature vector for a (generated tuple, evidence tuple) pair."""
    target = obj.attribute or ""
    data = obj.row.as_dict()
    other = evidence.as_dict()
    other_by_norm = {normalize(c): v for c, v in other.items()}

    identity_values = [
        v for c, v in data.items() if normalize(c) != normalize(target)
    ]
    identity_tokens = set(analyze(" ".join(identity_values)))
    evidence_tokens = set(analyze(" ".join(other.values())))
    identity_overlap = (
        len(identity_tokens & evidence_tokens) / len(identity_tokens)
        if identity_tokens
        else 0.0
    )

    schema_overlap = jaccard(
        [normalize(c) for c in data], [normalize(c) for c in other]
    )

    target_value = data.get(target, "")
    evidence_value = other_by_norm.get(normalize(target), "")
    if target and evidence_value:
        value_sim = _value_similarity(target_value, evidence_value)
        exact = 1.0 if _value_similarity(target_value, evidence_value) >= 0.999 else 0.0
    else:
        value_sim = 0.0
        exact = 0.0

    shared_agreements = []
    for column, value in data.items():
        evidence_cell = other_by_norm.get(normalize(column))
        if evidence_cell is None:
            continue
        shared_agreements.append(_value_similarity(value, evidence_cell))
    agreement = (
        sum(shared_agreements) / len(shared_agreements)
        if shared_agreements
        else 0.0
    )

    return np.array(
        [identity_overlap, schema_overlap, value_sim, exact, agreement],
        dtype=np.float64,
    )


class TupleVerifier(Verifier):
    """Trained logistic-regression pair classifier for (tuple, tuple)."""

    name = "tuple-lr"

    def __init__(
        self,
        relatedness_threshold: float = 0.4,
        learning_rate: float = 0.5,
        epochs: int = 300,
        seed: int = 5,
    ) -> None:
        self.relatedness_threshold = relatedness_threshold
        self.learning_rate = learning_rate
        self.epochs = epochs
        self.seed = seed
        self._weights = np.zeros(_NUM_FEATURES + 1, dtype=np.float64)
        self._trained = False

    @property
    def is_trained(self) -> bool:
        return self._trained

    def supports(self, obj: DataObject, evidence: DataInstance) -> bool:
        """This local model handles (tuple, tuple) pairs only."""
        return isinstance(obj, TupleObject) and isinstance(evidence, Row)

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def train(
        self, pairs: Sequence[Tuple[TupleObject, Row, bool]]
    ) -> "TupleVerifier":
        """Fit the classifier on labelled (object, evidence, supports) pairs."""
        if not pairs:
            raise ValueError("cannot train on an empty pair set")
        features = np.vstack([pair_features(obj, row) for obj, row, _ in pairs])
        features = np.hstack([features, np.ones((features.shape[0], 1))])
        labels = np.array([1.0 if label else 0.0 for _, _, label in pairs])
        rng = np.random.default_rng(self.seed)
        weights = rng.standard_normal(features.shape[1]) * 0.01
        n = features.shape[0]
        for _ in range(self.epochs):
            logits = features @ weights
            probs = 1.0 / (1.0 + np.exp(-logits))
            gradient = features.T @ (probs - labels) / n
            weights -= self.learning_rate * gradient
        self._weights = weights
        self._trained = True
        return self

    def predict_proba(self, obj: TupleObject, evidence: Row) -> float:
        """P(evidence supports the generated value)."""
        if not self._trained:
            raise RuntimeError("TupleVerifier.predict called before train()")
        feats = np.append(pair_features(obj, evidence), 1.0)
        return float(1.0 / (1.0 + np.exp(-feats @ self._weights)))

    # ------------------------------------------------------------------
    # verification
    # ------------------------------------------------------------------
    def _anchor_overlap(self, obj: TupleObject, evidence: Row) -> float:
        """Fraction of the tuple's leading (entity-naming) field found in
        the evidence — rows about a different entity must not be
        classified, only gated to NOT_RELATED."""
        target = normalize(obj.attribute or "")
        anchor_tokens: set = set()
        for column, value in obj.row.as_dict().items():
            if normalize(column) != target:
                anchor_tokens = set(analyze(value))
                break
        if not anchor_tokens:
            return 1.0
        evidence_tokens = set(analyze(" ".join(evidence.values)))
        return len(anchor_tokens & evidence_tokens) / len(anchor_tokens)

    def verify(self, obj: DataObject, evidence: DataInstance) -> VerificationOutcome:
        if not self.supports(obj, evidence):
            raise TypeError(
                f"{self.name} verifies (tuple, tuple) pairs, got "
                f"({type(obj).__name__}, {type(evidence).__name__})"
            )
        assert isinstance(obj, TupleObject) and isinstance(evidence, Row)
        feats = pair_features(obj, evidence)
        identity_overlap = feats[0]
        anchor_overlap = self._anchor_overlap(obj, evidence)
        if (
            identity_overlap < self.relatedness_threshold
            or anchor_overlap < 0.6
        ):
            return self._outcome(
                Verdict.NOT_RELATED,
                f"identity overlap {identity_overlap:.2f} / anchor overlap "
                f"{anchor_overlap:.2f} below threshold",
                evidence,
            )
        probability = self.predict_proba(obj, evidence)
        if probability >= 0.5:
            return self._outcome(
                Verdict.VERIFIED,
                f"classifier support probability {probability:.2f}",
                evidence,
            )
        return self._outcome(
            Verdict.REFUTED,
            f"classifier support probability {probability:.2f}",
            evidence,
        )


def training_pairs_from_tables(
    tables: Sequence[Table],
    num_pairs: int = 400,
    seed: int = 17,
) -> List[Tuple[TupleObject, Row, bool]]:
    """Self-supervised training pairs: for a sampled row and column, the
    positive keeps the true value, the negative swaps in another value
    from the same column."""
    rng = random.Random(seed)
    usable = [t for t in tables if t.num_rows >= 2 and t.num_columns >= 2]
    if not usable:
        return []
    pairs: List[Tuple[TupleObject, Row, bool]] = []
    attempts = 0
    while len(pairs) < num_pairs and attempts < num_pairs * 10:
        attempts += 1
        table = rng.choice(usable)
        row = table.row(rng.randrange(table.num_rows))
        columns = [c for c in table.columns if c != table.key_column]
        if not columns:
            continue
        column = rng.choice(columns)
        true_value = row.get(column)
        assert true_value is not None
        positive = len(pairs) % 2 == 0
        if positive:
            candidate = row
        else:
            alternatives = [
                v for v in table.column_values(column)
                if normalize(v) != normalize(true_value)
            ]
            if not alternatives:
                continue
            candidate = row.replace_value(column, rng.choice(sorted(set(alternatives))))
        obj = TupleObject(
            object_id=f"train-{len(pairs)}",
            row=candidate,
            attribute=column,
        )
        pairs.append((obj, row, positive))
    return pairs
