"""Local (text, knowledge-graph entity) verifier — a Section 5 prototype.

The paper's open problems call for "local models that are specifically
trained for certain use cases, such as (text, knowledge graph entity)".
This verifier grounds a lookup-style claim in an entity's triples:

* the claim's subject must match the entity's name (else NOT_RELATED);
* the claim's column is matched against triple predicates by token
  overlap (else NOT_RELATED — the entity doesn't record that relation);
* the claimed value is compared against the matched triple's object
  (numeric-aware) for VERIFIED / REFUTED.

Non-lookup claims (aggregates, comparatives) cannot be grounded in a
single entity and return NOT_RELATED.
"""

from __future__ import annotations

from typing import Optional

from repro.claims.model import ClaimOp
from repro.claims.parser import ClaimParser
from repro.datalake.kg import KGEntity
from repro.datalake.types import DataInstance
from repro.text import analyze, normalize
from repro.text.numbers import numbers_equal, parse_number
from repro.verify.base import VerificationOutcome, Verifier
from repro.verify.objects import ClaimObject, DataObject
from repro.verify.verdict import Verdict


def _values_agree(a: str, b: str) -> bool:
    num_a, num_b = parse_number(a), parse_number(b)
    if num_a is not None and num_b is not None:
        return numbers_equal(num_a, num_b)
    return normalize(a) == normalize(b)


class KGVerifier(Verifier):
    """Triple-grounded claim verification."""

    name = "kg"

    def __init__(self, predicate_threshold: float = 0.5) -> None:
        if not 0.0 < predicate_threshold <= 1.0:
            raise ValueError("predicate_threshold must be in (0, 1]")
        self.parser = ClaimParser(strict=False)
        self.predicate_threshold = predicate_threshold

    def supports(self, obj: DataObject, evidence: DataInstance) -> bool:
        """KG verification handles (text, KG entity) pairs."""
        return isinstance(obj, ClaimObject) and isinstance(evidence, KGEntity)

    def _match_predicate(self, entity: KGEntity, column: str) -> Optional[str]:
        target_tokens = set(analyze(column))
        if not target_tokens:
            return None
        best_score = 0.0
        best: Optional[str] = None
        for triple in entity.triples:
            predicate_tokens = set(analyze(triple.predicate))
            if not predicate_tokens:
                continue
            union = target_tokens | predicate_tokens
            score = len(target_tokens & predicate_tokens) / len(union)
            if score > best_score:
                best_score = score
                best = triple.predicate
        if best_score >= self.predicate_threshold:
            return best
        return None

    def verify(self, obj: DataObject, evidence: DataInstance) -> VerificationOutcome:
        if not self.supports(obj, evidence):
            raise TypeError(
                f"{self.name} verifies (text, KG entity) pairs, got "
                f"({type(obj).__name__}, {type(evidence).__name__})"
            )
        assert isinstance(obj, ClaimObject) and isinstance(evidence, KGEntity)
        spec = self.parser.parse(obj.text)
        if spec is None or spec.op is not ClaimOp.LOOKUP:
            return self._outcome(
                Verdict.NOT_RELATED,
                "only lookup claims can be grounded in a single entity",
                evidence,
            )
        assert spec.subject is not None and spec.value is not None
        if normalize(spec.subject) != normalize(evidence.name):
            return self._outcome(
                Verdict.NOT_RELATED,
                f"the entity {evidence.name!r} is not the claim's subject "
                f"{spec.subject!r}",
                evidence,
            )
        predicate = self._match_predicate(evidence, spec.column)
        if predicate is None:
            return self._outcome(
                Verdict.NOT_RELATED,
                f"no triple of {evidence.name!r} records {spec.column!r}",
                evidence,
            )
        objects = [
            t.obj for t in evidence.triples
            if t.predicate == predicate
        ]
        if any(_values_agree(value, spec.value) for value in objects):
            return self._outcome(
                Verdict.VERIFIED,
                f"triple ({evidence.name}, {predicate}, {objects[0]}) "
                "supports the claim",
                evidence,
            )
        return self._outcome(
            Verdict.REFUTED,
            f"the graph records {predicate} = {objects[0]!r}, not "
            f"{spec.value!r}",
            evidence,
        )
