"""The Verifier module (Section 3.3).

``verify(g, x) -> VERIFIED | REFUTED | NOT_RELATED`` for a generated
data object ``g`` and a retrieved data instance ``x``.  Two families of
verifiers, as in the paper:

* :class:`LLMVerifier` — the one-size-fits-all model (ChatGPT stand-in),
  strong at generalization / relatedness detection;
* local, task-specific models: :class:`PastaVerifier` for (text, table)
  — exact table-operation execution, binary output, brittle on
  out-of-distribution evidence — and :class:`TupleVerifier`, a trained
  classifier for (tuple, tuple) pairs (the RoBERTa stand-in).

A :class:`VerifierAgent` decides which verifier handles a given
(object, evidence) pair.
"""

from repro.verify.agent import VerifierAgent
from repro.verify.base import VerificationError, VerificationOutcome, Verifier
from repro.verify.kg_verifier import KGVerifier
from repro.verify.llm_verifier import LLMVerifier
from repro.verify.objects import ClaimObject, DataObject, TupleObject
from repro.verify.pasta import PastaVerifier
from repro.verify.tuple_verifier import TupleVerifier
from repro.verify.verdict import Verdict

__all__ = [
    "ClaimObject",
    "DataObject",
    "KGVerifier",
    "LLMVerifier",
    "PastaVerifier",
    "TupleObject",
    "TupleVerifier",
    "VerificationError",
    "VerificationOutcome",
    "Verdict",
    "Verifier",
    "VerifierAgent",
]
