"""The ternary verification verdict.

The paper defines ``verify(g, x) -> 0 | 1 | 2`` for verified / refuted /
not related; the enum values match that encoding.
"""

from __future__ import annotations

import enum
from typing import Optional


class Verdict(enum.IntEnum):
    """Outcome of verifying one (data object, data instance) pair."""

    VERIFIED = 0
    REFUTED = 1
    NOT_RELATED = 2

    @classmethod
    def from_string(cls, text: Optional[str]) -> Optional["Verdict"]:
        """Map a response string (case-insensitive) to a verdict."""
        if text is None:
            return None
        mapping = {
            "verified": cls.VERIFIED,
            "true": cls.VERIFIED,
            "refuted": cls.REFUTED,
            "false": cls.REFUTED,
            "not related": cls.NOT_RELATED,
            "unrelated": cls.NOT_RELATED,
        }
        return mapping.get(text.strip().lower())

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return {0: "Verified", 1: "Refuted", 2: "Not Related"}[int(self)]
