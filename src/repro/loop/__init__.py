"""Orchestrate-until-pass: closing the generate -> verify -> repair loop.

* :mod:`repro.loop.orchestrator` — the loop driver (draft, verify via
  ``verify_batch``, feed refuter evidence back as revision prompts);
* :mod:`repro.loop.trail` — the byte-stable JSONL audit trail;
* :mod:`repro.loop.scenarios` — the seeded convergence harness.
"""

from repro.loop.orchestrator import (
    DraftSpec,
    LoopConfig,
    LoopOrchestrator,
    LoopResult,
    RoundStats,
    TaskOutcome,
    TaskState,
)
from repro.loop.scenarios import (
    DEFAULT_MIX,
    MixReport,
    Scenario,
    ScenarioResult,
    run_mix,
    run_scenario,
)
from repro.loop.trail import SCHEMA, AuditTrail, read_trail

__all__ = [
    "AuditTrail",
    "DEFAULT_MIX",
    "DraftSpec",
    "LoopConfig",
    "LoopOrchestrator",
    "LoopResult",
    "MixReport",
    "RoundStats",
    "SCHEMA",
    "Scenario",
    "ScenarioResult",
    "TaskOutcome",
    "TaskState",
    "read_trail",
    "run_mix",
    "run_scenario",
]
