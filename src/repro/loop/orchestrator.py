"""Orchestrate-until-pass: the verify loop closed over the generator.

Single-pass repair (:mod:`repro.repair`) patches a refuted value from
evidence and stops.  This module instead *re-generates*: refuted or
unrelated drafts go back to the generator as revision prompts carrying
the strongest refuter's stated value (the same
:func:`repro.repair.strongest_refuter` semantics repair uses), and the
loop iterates until every draft verifies or ``max_iters`` rounds are
spent.

State machine per task::

    DRAFTING --draft--> VERIFYING --VERIFIED--> PASSED
                           |  ^
            REFUTED /      |  | revision draft (feedback + iteration)
            NOT_RELATED    v  |
                        REVISING --round == max_iters--> EXHAUSTED

All verification runs through :meth:`VerifAI.verify_batch`, one batch
per round, so the loop inherits the batch engine's dedupe, error
boundary, and — crucially — its determinism: report order matches
input order and record/trace ids are allocated serially.  Every
decision lands in an :class:`~repro.loop.trail.AuditTrail` entry
cross-linking the provenance ``record_id`` and trace id of the verdict
it acted on; under a frozen TickClock the trail is byte-identical for
serial and parallel runs of the same seed.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.claims.engine import TableQueryEngine
from repro.core.pipeline import VerifAI
from repro.datalake.types import Row
from repro.llm.model import SimulatedLLM
from repro.llm.prompts import (
    parse_completed_table,
    tuple_completion_prompt,
    tuple_revision_prompt,
)
from repro.loop.trail import AuditTrail
from repro.obs.events import get_event_log
from repro.obs.metrics import get_registry
from repro.repair import strongest_refuter
from repro.verify.objects import TupleObject
from repro.verify.verdict import Verdict
from repro.workloads.builder import LakeBundle
from repro.workloads.tuplecomp import TupleCompletionTask

#: placeholder the generator is asked to fill
MASK = "NaN"


class TaskState(enum.Enum):
    """Terminal state of one task after the loop."""

    PASSED = "passed"        # a draft verified within max_iters rounds
    EXHAUSTED = "exhausted"  # max_iters rounds spent without a pass


@dataclass(frozen=True)
class DraftSpec:
    """One cell the loop must impute-and-verify.

    Carries its own ``caption`` (rather than looking it up in the
    serving lake) because scenario harnesses may drop the task's table
    from the lake to model partial coverage — the generator still needs
    to know what table it is completing.  ``true_value`` is optional
    ground truth used only for accuracy reporting, never by the loop
    itself.
    """

    task_id: str
    caption: str
    row: Row                 # the original, complete tuple
    column: str              # the cell to impute
    true_value: str = ""

    @classmethod
    def from_task(
        cls, task: TupleCompletionTask, bundle: LakeBundle
    ) -> "DraftSpec":
        return cls(
            task_id=task.task_id,
            caption=bundle.lake.table(task.row.table_id).caption,
            row=task.row,
            column=task.column,
            true_value=task.true_value,
        )

    def masked_row(self) -> Row:
        return self.row.replace_value(self.column, MASK)

    def completed_row(self, value: str) -> Row:
        return self.row.replace_value(self.column, value)


@dataclass
class TaskOutcome:
    """What the loop concluded about one task."""

    spec: DraftSpec
    first_value: str = ""
    final_value: str = ""
    state: TaskState = TaskState.EXHAUSTED
    iterations: int = 0      # verification rounds consumed
    #: (round, verdict name) per verification, in order
    history: List[Tuple[int, str]] = field(default_factory=list)

    @property
    def first_correct(self) -> bool:
        return TableQueryEngine.values_match(
            self.first_value, self.spec.true_value
        )

    @property
    def final_correct(self) -> bool:
        return TableQueryEngine.values_match(
            self.final_value, self.spec.true_value
        )


@dataclass(frozen=True)
class RoundStats:
    """Verdict counts of one verification round (the per-iteration
    delta the convergence harness reports)."""

    round: int
    active: int
    verified: int
    refuted: int
    unresolved: int


@dataclass
class LoopResult:
    """Aggregate of one orchestration run."""

    outcomes: List[TaskOutcome]
    rounds: List[RoundStats]
    trail: AuditTrail

    def __len__(self) -> int:
        return len(self.outcomes)

    @property
    def passed(self) -> int:
        return sum(1 for o in self.outcomes if o.state is TaskState.PASSED)

    @property
    def exhausted(self) -> int:
        return sum(1 for o in self.outcomes if o.state is TaskState.EXHAUSTED)

    @property
    def convergence_rate(self) -> float:
        return self.passed / len(self.outcomes) if self.outcomes else 0.0

    @property
    def first_pass_accuracy(self) -> float:
        """Value accuracy of the round-1 drafts (no feedback yet)."""
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes if o.first_correct) / len(
            self.outcomes
        )

    @property
    def end_accuracy(self) -> float:
        """Value accuracy of the values the loop settled on."""
        if not self.outcomes:
            return 0.0
        return sum(1 for o in self.outcomes if o.final_correct) / len(
            self.outcomes
        )

    @property
    def mean_iterations_to_pass(self) -> float:
        """Mean rounds consumed by tasks that passed (0.0 if none did)."""
        rounds = [
            o.iterations for o in self.outcomes if o.state is TaskState.PASSED
        ]
        return sum(rounds) / len(rounds) if rounds else 0.0

    def summary(self) -> str:
        return (
            f"{len(self.outcomes)} tasks: {self.passed} passed, "
            f"{self.exhausted} exhausted in {len(self.rounds)} rounds; "
            f"accuracy {self.first_pass_accuracy:.2f} -> "
            f"{self.end_accuracy:.2f}"
        )


@dataclass(frozen=True)
class LoopConfig:
    """Knobs of the orchestrate-until-pass loop.

    ``max_iters`` counts *verification rounds* — a task that passes on
    its first draft consumed 1 iteration.  ``max_workers`` is handed to
    ``verify_batch`` (1 = the serial path); the audit trail is
    byte-identical either way under a frozen clock.
    """

    max_iters: int = 4
    max_workers: int = 1
    seed: Optional[int] = None   # stamped into the trail header only

    def __post_init__(self) -> None:
        if self.max_iters < 1:
            raise ValueError(f"max_iters must be >= 1, got {self.max_iters}")


#: revision notes for verdicts that state no replacement value
NOTE_NOT_RELATED = "no related evidence was found for the drafted value"
NOTE_REFUTED_NO_VALUE = (
    "the draft was refuted but no refuting tuple states a value"
)
NOTE_FAILED = "verification failed; treat the draft as unsupported"


class LoopOrchestrator:
    """Drives draft -> verify -> revise until pass or exhaustion."""

    def __init__(
        self,
        system: VerifAI,
        generator: SimulatedLLM,
        config: LoopConfig = LoopConfig(),
    ) -> None:
        self.system = system
        self.generator = generator
        self.config = config
        self.metrics = get_registry()

    # ------------------------------------------------------------------
    # drafting
    # ------------------------------------------------------------------
    def _extract_value(self, response: str, column: str) -> str:
        parsed = parse_completed_table(response)
        if parsed is None:
            return ""
        header, rows = parsed
        return dict(zip(header, rows[0])).get(column, "")

    def _draft(self, spec: DraftSpec) -> str:
        """Round-1 draft: the plain tuple-completion prompt."""
        masked = spec.masked_row()
        prompt = tuple_completion_prompt(
            spec.caption, masked.columns, [masked.values]
        )
        self.metrics.counter("loop.drafts").inc()
        return self._extract_value(self.generator.chat(prompt), spec.column)

    def _revise(
        self,
        spec: DraftSpec,
        feedback: List[Tuple[str, Optional[str], str]],
        iteration: int,
    ) -> str:
        """Re-draft with the verifier's feedback quoted back."""
        masked = spec.masked_row()
        prompt = tuple_revision_prompt(
            spec.caption, masked.columns, [masked.values], feedback, iteration
        )
        self.metrics.counter("loop.revisions").inc()
        return self._extract_value(self.generator.chat(prompt), spec.column)

    # ------------------------------------------------------------------
    # feedback construction
    # ------------------------------------------------------------------
    def _feedback_for(
        self, report, column: str
    ) -> Tuple[Optional[str], Optional[str], str]:
        """(stated_value, evidence_id, note) for one failed verdict."""
        if not report.ok:
            return None, None, NOTE_FAILED
        if report.final_verdict is Verdict.REFUTED:
            stated = strongest_refuter(self.system, report, column)
            if stated is not None:
                value, evidence_id = stated
                return value, evidence_id, ""
            return None, None, NOTE_REFUTED_NO_VALUE
        return None, None, NOTE_NOT_RELATED

    # ------------------------------------------------------------------
    # the loop
    # ------------------------------------------------------------------
    def run(self, specs: Sequence[DraftSpec]) -> LoopResult:
        """Orchestrate every spec to a terminal state."""
        config = self.config
        events = get_event_log()
        trail = AuditTrail(clock=self.system.clock)
        trail.start(
            tasks=len(specs), max_iters=config.max_iters, seed=config.seed
        )
        events.emit(
            "loop.start", tasks=len(specs), max_iters=config.max_iters
        )

        outcomes = [TaskOutcome(spec=spec) for spec in specs]
        values: Dict[int, str] = {}
        for index, outcome in enumerate(outcomes):
            value = self._draft(outcome.spec)
            values[index] = value
            outcome.first_value = value
            outcome.final_value = value
            trail.draft(
                task_id=outcome.spec.task_id,
                iteration=1,
                column=outcome.spec.column,
                value=value,
                revised=False,
            )

        active = list(range(len(outcomes)))
        rounds: List[RoundStats] = []
        drafts = len(outcomes)
        revisions = 0
        for round_number in range(1, config.max_iters + 1):
            if not active:
                break
            objects = [
                TupleObject(
                    object_id=f"{outcomes[i].spec.task_id}:r{round_number}",
                    row=outcomes[i].spec.completed_row(values[i]),
                    attribute=outcomes[i].spec.column,
                )
                for i in active
            ]
            batch = self.system.verify_batch(
                objects, max_workers=config.max_workers, trace=True
            )
            self.metrics.counter("loop.rounds").inc()

            verified = refuted = unresolved = 0
            still_active: List[int] = []
            for index, report in zip(active, batch.reports):
                outcome = outcomes[index]
                spec = outcome.spec
                outcome.iterations = round_number
                outcome.history.append(
                    (round_number, report.final_verdict.name)
                )
                stated, evidence_id, note = (None, None, "")
                if report.final_verdict is Verdict.VERIFIED:
                    verified += 1
                elif report.final_verdict is Verdict.REFUTED:
                    refuted += 1
                else:
                    unresolved += 1
                if report.final_verdict is not Verdict.VERIFIED:
                    stated, evidence_id, note = self._feedback_for(
                        report, spec.column
                    )
                record = self.system.provenance.get(report.record_id)
                trail.verdict(
                    task_id=spec.task_id,
                    iteration=round_number,
                    verdict=report.final_verdict.name,
                    margin=report.margin,
                    record_id=report.record_id,
                    trace_id=record.trace_id,
                    evidence=len(report.outcomes),
                    stated_value=stated,
                    stated_evidence_id=evidence_id,
                )
                events.emit(
                    "loop.verdict",
                    task_id=spec.task_id,
                    iteration=round_number,
                    verdict=report.final_verdict.name,
                    record_id=report.record_id,
                )
                if report.final_verdict is Verdict.VERIFIED:
                    outcome.state = TaskState.PASSED
                    self.metrics.counter("loop.passed").inc()
                    self.metrics.histogram(
                        "loop.iterations_to_pass"
                    ).observe(float(round_number))
                    trail.task_end(
                        task_id=spec.task_id,
                        state=TaskState.PASSED.value,
                        iterations=round_number,
                    )
                    continue
                if round_number == config.max_iters:
                    outcome.state = TaskState.EXHAUSTED
                    self.metrics.counter("loop.exhausted").inc()
                    trail.task_end(
                        task_id=spec.task_id,
                        state=TaskState.EXHAUSTED.value,
                        iterations=round_number,
                    )
                    continue
                # revise for the next round, feedback in hand
                feedback = [(spec.column, stated, note)]
                value = self._revise(spec, feedback, round_number)
                revisions += 1
                values[index] = value
                outcome.final_value = value
                trail.draft(
                    task_id=spec.task_id,
                    iteration=round_number + 1,
                    column=spec.column,
                    value=value,
                    revised=True,
                )
                still_active.append(index)
            rounds.append(
                RoundStats(
                    round=round_number,
                    active=len(active),
                    verified=verified,
                    refuted=refuted,
                    unresolved=unresolved,
                )
            )
            active = still_active

        passed = sum(1 for o in outcomes if o.state is TaskState.PASSED)
        trail.summary(
            passed=passed,
            exhausted=len(outcomes) - passed,
            rounds=len(rounds),
            drafts=drafts,
            revisions=revisions,
        )
        events.emit(
            "loop.end",
            passed=passed,
            exhausted=len(outcomes) - passed,
            rounds=len(rounds),
        )
        return LoopResult(outcomes=outcomes, rounds=rounds, trail=trail)
