"""The orchestration audit trail (JSONL, schema ``loop-trail/v1``).

Every decision the orchestrate-until-pass loop makes lands here as one
JSON object per line, in the order it happened: the run header, each
draft the generator produced, each verdict the verifier returned (with
the provenance ``record_id`` and trace id it cross-links to), each
task's terminal state, and the run summary.

Determinism contract: under a frozen
:class:`~repro.obs.clock.TickClock`, two runs of the same seeded loop —
serial or parallel — serialize to **byte-identical** JSONL.  That is
why entries carry nothing run-shape-dependent (no worker counts, no
wall-clock durations) and why serialization pins key order and
separators.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Union

from repro.obs.clock import Clock, MonotonicClock

#: schema tag stamped on every run header
SCHEMA = "loop-trail/v1"

#: value types a trail entry field may carry
TrailValue = Union[str, int, float, bool, None]


def _dumps(entry: Dict[str, TrailValue]) -> str:
    """One trail entry as canonical compact JSON (sorted keys, no
    whitespace) — the byte-stability contract of the trail."""
    return json.dumps(
        entry, sort_keys=True, ensure_ascii=False, separators=(",", ":")
    )


@dataclass
class AuditTrail:
    """An append-only record of one orchestration run.

    Entries are plain dicts (JSON-shaped); :meth:`append` stamps each
    with the injected clock's time and a per-trail sequence number, so
    a reader can detect truncation and order entries without trusting
    timestamps (a frozen test clock makes them all equal).
    """

    clock: Clock = field(default_factory=MonotonicClock)
    entries: List[Dict[str, TrailValue]] = field(default_factory=list)

    def append(self, kind: str, **fields: TrailValue) -> Dict[str, TrailValue]:
        """Record one entry; returns it (mainly for tests)."""
        entry: Dict[str, TrailValue] = {
            "seq": len(self.entries) + 1,
            "time": self.clock.now(),
            "kind": kind,
        }
        for key, value in fields.items():
            if key in entry:
                raise ValueError(f"reserved trail field {key!r}")
            entry[key] = value
        self.entries.append(entry)
        return entry

    # ------------------------------------------------------------------
    # structured appenders (the schema lives here, not at call sites)
    # ------------------------------------------------------------------
    def start(self, *, tasks: int, max_iters: int, seed: Optional[int]) -> None:
        self.append(
            "start",
            schema=SCHEMA,
            tasks=tasks,
            max_iters=max_iters,
            seed=seed,
        )

    def draft(
        self,
        *,
        task_id: str,
        iteration: int,
        column: str,
        value: str,
        revised: bool,
    ) -> None:
        self.append(
            "draft",
            task_id=task_id,
            iteration=iteration,
            column=column,
            value=value,
            revised=revised,
        )

    def verdict(
        self,
        *,
        task_id: str,
        iteration: int,
        verdict: str,
        margin: float,
        record_id: str,
        trace_id: str,
        evidence: int,
        stated_value: Optional[str],
        stated_evidence_id: Optional[str],
    ) -> None:
        self.append(
            "verdict",
            task_id=task_id,
            iteration=iteration,
            verdict=verdict,
            margin=margin,
            record_id=record_id,
            trace_id=trace_id,
            evidence=evidence,
            stated_value=stated_value,
            stated_evidence_id=stated_evidence_id,
        )

    def task_end(self, *, task_id: str, state: str, iterations: int) -> None:
        self.append(
            "task_end", task_id=task_id, state=state, iterations=iterations
        )

    def summary(
        self,
        *,
        passed: int,
        exhausted: int,
        rounds: int,
        drafts: int,
        revisions: int,
    ) -> None:
        self.append(
            "summary",
            passed=passed,
            exhausted=exhausted,
            rounds=rounds,
            drafts=drafts,
            revisions=revisions,
        )

    # ------------------------------------------------------------------
    # reading / serialization
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[Dict[str, TrailValue]]:
        return iter(self.entries)

    def of_kind(self, kind: str) -> List[Dict[str, TrailValue]]:
        return [entry for entry in self.entries if entry["kind"] == kind]

    def to_jsonl(self) -> str:
        """The whole trail, one canonical JSON object per line."""
        lines = [_dumps(entry) for entry in self.entries]
        return "\n".join(lines) + ("\n" if lines else "")

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())


def read_trail(text: str) -> List[Dict[str, TrailValue]]:
    """Parse a JSONL trail back into entries (schema-checked header)."""
    entries: List[Dict[str, TrailValue]] = []
    for line in text.splitlines():
        line = line.strip()
        if line:
            entries.append(json.loads(line))
    if entries and entries[0].get("kind") == "start":
        schema = entries[0].get("schema")
        if schema != SCHEMA:
            raise ValueError(f"unsupported trail schema {schema!r}")
    return entries
