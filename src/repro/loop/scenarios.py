"""Seeded convergence scenarios for the orchestrate-until-pass loop.

A :class:`Scenario` is one point on the hallucination-rate x
lake-coverage grid: the generator's parametric memory quality comes
from :class:`~repro.llm.knowledge.WorldKnowledge` knobs (low coverage
=> more hallucinated first drafts), and the lake's evidence coverage
from seeded table removal before the serving system is built (a
removed table takes the tuple counterpart — the strongest repair
signal — with it; entity pages survive, so text evidence may still
verify or refute).

Everything is derived from the scenario's seed and runs under a frozen
:class:`~repro.obs.clock.TickClock`, so a scenario's numbers — and its
audit trail bytes — are a pure function of its definition.  The
default mix is the acceptance campaign: a generator drafting at <= 0.6
first-pass accuracy must converge to >= 0.9 end-state accuracy within
``max_iters=4`` (see ``benchmarks/test_bench_loop.py``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.config import VerifAIConfig
from repro.core.pipeline import VerifAI
from repro.llm.knowledge import WorldKnowledge, rng_for
from repro.llm.model import SimulatedLLM
from repro.loop.orchestrator import (
    DraftSpec,
    LoopConfig,
    LoopOrchestrator,
    LoopResult,
)
from repro.obs.clock import Clock, TickClock
from repro.workloads.builder import LakeConfig, build_lake
from repro.workloads.tuplecomp import build_tuple_workload


@dataclass(frozen=True)
class Scenario:
    """One convergence experiment on the grid."""

    name: str
    knowledge_coverage: float = 0.35   # P(cell remembered correctly)
    wrong_rate: float = 0.3            # P(cell remembered plausibly wrong)
    lake_coverage: float = 1.0         # fraction of tables kept serving
    num_tables: int = 48
    num_tasks: int = 24
    seed: int = 7

    def __post_init__(self) -> None:
        if not 0.0 < self.lake_coverage <= 1.0:
            raise ValueError(
                f"lake_coverage must be in (0, 1], got {self.lake_coverage}"
            )


#: the acceptance campaign: mostly full-lake scenarios at two
#: hallucination rates, plus one partial-coverage corner
DEFAULT_MIX: List[Scenario] = [
    Scenario(name="amnesic-full-lake", knowledge_coverage=0.25,
             wrong_rate=0.35, lake_coverage=1.0, seed=7),
    Scenario(name="hazy-full-lake", knowledge_coverage=0.45,
             wrong_rate=0.3, lake_coverage=1.0, seed=11),
    Scenario(name="hazy-sparse-lake", knowledge_coverage=0.45,
             wrong_rate=0.3, lake_coverage=0.9, seed=13),
]


@dataclass
class ScenarioResult:
    """A scenario plus the loop run it produced."""

    scenario: Scenario
    result: LoopResult

    def to_dict(self) -> Dict[str, object]:
        """JSON-shaped convergence stats (what the benchmark records)."""
        return {
            "name": self.scenario.name,
            "tasks": len(self.result),
            "passed": self.result.passed,
            "exhausted": self.result.exhausted,
            "first_pass_accuracy": round(
                self.result.first_pass_accuracy, 4
            ),
            "end_accuracy": round(self.result.end_accuracy, 4),
            "mean_iterations_to_pass": round(
                self.result.mean_iterations_to_pass, 4
            ),
            "rounds": [
                {
                    "round": r.round,
                    "active": r.active,
                    "verified": r.verified,
                    "refuted": r.refuted,
                    "unresolved": r.unresolved,
                }
                for r in self.result.rounds
            ],
        }


@dataclass
class MixReport:
    """Aggregate view of a scenario-mix campaign."""

    results: List[ScenarioResult] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.results)

    def __iter__(self):
        return iter(self.results)

    @property
    def tasks(self) -> int:
        return sum(len(r.result) for r in self.results)

    def _weighted(self, attribute: str) -> float:
        total = self.tasks
        if not total:
            return 0.0
        return (
            sum(
                getattr(r.result, attribute) * len(r.result)
                for r in self.results
            )
            / total
        )

    @property
    def first_pass_accuracy(self) -> float:
        return self._weighted("first_pass_accuracy")

    @property
    def end_accuracy(self) -> float:
        return self._weighted("end_accuracy")

    @property
    def convergence_rate(self) -> float:
        return self._weighted("convergence_rate")

    @property
    def mean_iterations_to_pass(self) -> float:
        """Mean over all passed tasks across the mix."""
        rounds = [
            outcome.iterations
            for r in self.results
            for outcome in r.result.outcomes
            if outcome.state.value == "passed"
        ]
        return sum(rounds) / len(rounds) if rounds else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "tasks": self.tasks,
            "first_pass_accuracy": round(self.first_pass_accuracy, 4),
            "end_accuracy": round(self.end_accuracy, 4),
            "convergence_rate": round(self.convergence_rate, 4),
            "mean_iterations_to_pass": round(
                self.mean_iterations_to_pass, 4
            ),
            "scenarios": [r.to_dict() for r in self.results],
        }

    def summary(self) -> str:
        return (
            f"{len(self.results)} scenarios / {self.tasks} tasks: "
            f"accuracy {self.first_pass_accuracy:.2f} -> "
            f"{self.end_accuracy:.2f}, "
            f"{self.convergence_rate:.0%} converged "
            f"(mean {self.mean_iterations_to_pass:.2f} rounds)"
        )


def build_scenario_system(
    scenario: Scenario, clock: Optional[Clock] = None
) -> tuple:
    """(system, generator, specs) for one scenario, fully seeded.

    The task specs are sampled from the *full* bundle before any table
    is dropped, so partial lake coverage changes what evidence the
    verifier can retrieve — not which cells the generator is asked to
    impute.
    """
    clock = clock or TickClock()
    bundle = build_lake(
        LakeConfig(num_tables=scenario.num_tables, seed=scenario.seed)
    )
    workload = build_tuple_workload(
        bundle, num_tasks=scenario.num_tasks, seed=scenario.seed + 1
    )
    specs = [DraftSpec.from_task(task, bundle) for task in workload]
    knowledge = WorldKnowledge(
        bundle.tables,
        coverage=scenario.knowledge_coverage,
        wrong_rate=scenario.wrong_rate,
        seed=scenario.seed + 3,
    )
    generator = SimulatedLLM(knowledge=knowledge, seed=scenario.seed + 4)
    if scenario.lake_coverage < 1.0:
        rng = rng_for(scenario.seed, "lake-coverage", scenario.name)
        table_ids = sorted(table.table_id for table in bundle.tables)
        num_drop = int(round(len(table_ids) * (1.0 - scenario.lake_coverage)))
        for table_id in rng.sample(table_ids, num_drop):
            bundle.lake.remove_instance(table_id)
    system = VerifAI(
        bundle.lake,
        llm=SimulatedLLM(knowledge=None, seed=scenario.seed + 5),
        config=VerifAIConfig(),
        clock=clock,
        cpu_clock=TickClock(),
    ).build_indexes()
    return system, generator, specs


def run_scenario(
    scenario: Scenario,
    max_iters: int = 4,
    max_workers: int = 1,
    clock: Optional[Clock] = None,
) -> ScenarioResult:
    """Build the scenario's world and orchestrate it to convergence."""
    system, generator, specs = build_scenario_system(scenario, clock=clock)
    orchestrator = LoopOrchestrator(
        system,
        generator,
        LoopConfig(
            max_iters=max_iters,
            max_workers=max_workers,
            seed=scenario.seed,
        ),
    )
    return ScenarioResult(scenario=scenario, result=orchestrator.run(specs))


def run_mix(
    scenarios: Optional[List[Scenario]] = None,
    max_iters: int = 4,
    max_workers: int = 1,
) -> MixReport:
    """Run a scenario mix (the default acceptance campaign when None)."""
    report = MixReport()
    for scenario in scenarios if scenarios is not None else DEFAULT_MIX:
        report.results.append(
            run_scenario(scenario, max_iters=max_iters, max_workers=max_workers)
        )
    return report
