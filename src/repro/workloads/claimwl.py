"""Textual-claim workload (Section 4, "Textual claims in need of verification").

TabFact-style claims generated from lake tables, each grounded in exactly
one table — "we consider the corresponding table to be relevant evidence,
while the remaining tables are considered irrelevant."
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from repro.claims.generator import ClaimGenerator
from repro.claims.model import Claim
from repro.workloads.builder import LakeBundle


@dataclass(frozen=True)
class ClaimTask:
    """One claim with its gold label and source table."""

    claim: Claim
    label: bool          # True = entailed by the source table
    table_id: str        # the single relevant table


@dataclass
class ClaimWorkload:
    """A batch of claim-verification tasks."""

    tasks: List[ClaimTask]

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)

    @property
    def positive_fraction(self) -> float:
        if not self.tasks:
            return 0.0
        return sum(1 for t in self.tasks if t.label) / len(self.tasks)


def build_claim_workload(
    bundle: LakeBundle,
    num_claims: int = 200,
    seed: int = 43,
    claims_per_table: int = 2,
    variation_rate: float = 0.2,
) -> ClaimWorkload:
    """Generate ``num_claims`` labelled claims over the bundle's tables.

    ``variation_rate`` paraphrases that fraction of claims outside the
    canonical template grammar (exercising verifier generalization).
    """
    if num_claims < 0:
        raise ValueError(f"num_claims must be >= 0, got {num_claims}")
    rng = random.Random(seed)
    tables = list(bundle.tables)
    rng.shuffle(tables)
    generator = ClaimGenerator(seed=seed, variation_rate=variation_rate)
    tasks: List[ClaimTask] = []
    for table in tables:
        if len(tasks) >= num_claims:
            break
        remaining = num_claims - len(tasks)
        for generated in generator.generate_for_table(
            table, min(claims_per_table, remaining)
        ):
            tasks.append(
                ClaimTask(
                    claim=generated.claim,
                    label=generated.label,
                    table_id=generated.table_id,
                )
            )
    return ClaimWorkload(tasks=tasks)
