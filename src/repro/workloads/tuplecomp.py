"""Tuple-completion workload (Section 4, "Tuples in need of verification").

The paper samples web-table tuples, blanks a non-key cell, asks the
generative model to impute it, and verifies the imputed value.  A
:class:`TupleCompletionTask` carries the original row (the ground-truth
counterpart that remains in the lake), the blanked column, and the true
value.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.datalake.types import Row
from repro.workloads.builder import LakeBundle

# columns that uniquely identify the row are never blanked; neither are
# entity name columns (imputing an entity name is entity resolution, not
# value completion)
_NEVER_BLANK_KINDS = ("key",)


@dataclass(frozen=True)
class TupleCompletionTask:
    """One tuple with a blanked non-key cell."""

    task_id: str
    row: Row            # the original, complete tuple (stays in the lake)
    column: str         # the blanked attribute
    true_value: str     # ground truth for the blank

    def masked_row(self, placeholder: str = "NaN") -> Row:
        """The row as the generative model sees it (value blanked)."""
        return self.row.replace_value(self.column, placeholder)

    def completed_row(self, value: str) -> Row:
        """The row with an imputed value substituted."""
        return self.row.replace_value(self.column, value)


@dataclass
class TupleCompletionWorkload:
    """A batch of tuple-completion tasks."""

    tasks: List[TupleCompletionTask]

    def __len__(self) -> int:
        return len(self.tasks)

    def __iter__(self):
        return iter(self.tasks)


def build_tuple_workload(
    bundle: LakeBundle,
    num_tasks: int = 100,
    seed: int = 42,
    blankable_columns: Optional[Sequence[str]] = None,
) -> TupleCompletionWorkload:
    """Sample ``num_tasks`` tuples from the lake and blank one cell each.

    By default any non-key, non-entity column may be blanked (mirroring
    "randomly removed a non-key attribute cell value").
    """
    if num_tasks < 0:
        raise ValueError(f"num_tasks must be >= 0, got {num_tasks}")
    rng = random.Random(seed)
    candidates = []
    for table in bundle.tables:
        protected = {table.key_column} | set(table.entity_columns)
        columns = [c for c in table.columns if c not in protected]
        if blankable_columns is not None:
            columns = [c for c in columns if c in blankable_columns]
        if not columns:
            continue
        for row_index in range(table.num_rows):
            candidates.append((table.table_id, row_index, columns))
    if not candidates:
        return TupleCompletionWorkload(tasks=[])
    chosen = rng.sample(candidates, min(num_tasks, len(candidates)))
    tasks: List[TupleCompletionTask] = []
    for task_index, (table_id, row_index, columns) in enumerate(chosen):
        row = bundle.lake.table(table_id).row(row_index)
        column = rng.choice(columns)
        true_value = row.get(column)
        assert true_value is not None
        tasks.append(
            TupleCompletionTask(
                task_id=f"tc-{task_index:04d}",
                row=row,
                column=column,
                true_value=true_value,
            )
        )
    return TupleCompletionWorkload(tasks=tasks)
