"""Web-table generation across six domains.

Each domain mimics a family of tables common in web-table corpora
(TabFact / WikiTable-TURL): elections, film casts, sports seasons, music
discographies, geography, and olympic medal tables.  Tables within a
domain share schema and caption structure (differing by state/year/team
etc.), which is what makes retrieval non-trivial: BM25 must distinguish
"elections in ohio 1950" from "elections in ohio 1952".

Entity-valued cells register :class:`Entity` appearances; the text
generator turns those into wiki-style pages.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.datalake.types import Source, Table
from repro.workloads.vocab import (
    CHARACTER_ROLES,
    COUNTRIES,
    DIRECTOR_STYLES,
    ELECTION_RESULTS,
    FILM_GENRES,
    NATIONS,
    PARTIES,
    POSITIONS,
    RECORD_LABELS,
    REGIONS,
    US_STATES,
    EntityNamer,
    Vocabulary,
)

DOMAINS = ("elections", "films", "sports", "music", "geography", "olympics")

#: additional table families available by explicit ``domain_mix`` opt-in
#: (kept out of the default mix so the calibrated evaluation corpora are
#: unchanged)
EXTENDED_DOMAINS = ("aviation", "books")


@dataclass
class Entity:
    """A real-world entity appearing in one or more table cells.

    ``kind`` drives page generation; ``appearances`` records the facts the
    entity participates in (one dict per table row that mentions it).
    ``distinctive`` marks entities whose names are globally unique —
    retrieval of their pages is easy; non-distinctive entities (districts,
    labels, regions, nations) share name tokens with many instances.
    """

    name: str
    kind: str
    distinctive: bool
    appearances: List[Dict[str, str]] = field(default_factory=list)
    peers: List[str] = field(default_factory=list)

    def add_appearance(self, **facts: str) -> None:
        self.appearances.append(dict(facts))

    def add_peers(self, names: List[str], limit: int = 3) -> None:
        """Record co-occurring entities (same table) for cross-mentions."""
        for name in names:
            if name.lower() == self.name.lower() or name in self.peers:
                continue
            if len(self.peers) >= limit:
                break
            self.peers.append(name)


class _EntityRegistry:
    """Collects entities across tables; shared entities accumulate facts."""

    def __init__(self) -> None:
        self.entities: Dict[str, Entity] = {}

    def record(self, name: str, kind: str, distinctive: bool, **facts: str) -> Entity:
        entity = self.entities.get(name.lower())
        if entity is None:
            entity = Entity(name=name, kind=kind, distinctive=distinctive)
            self.entities[name.lower()] = entity
        entity.add_appearance(**facts)
        return entity


class WebTableGenerator:
    """Seeded generator of domain-templated web tables."""

    def __init__(self, seed: int = 0, source_name: str = "webtables") -> None:
        self.seed = seed
        self._rng = random.Random(seed)
        self._vocab = Vocabulary(seed + 1)
        self._namer = EntityNamer(seed + 2)
        self._registry = _EntityRegistry()
        self._counter = 0
        self._source = Source(source_name)
        self._used_scopes: set = set()

    # ------------------------------------------------------------------
    # shared helpers
    # ------------------------------------------------------------------
    def _next_id(self, domain: str) -> str:
        self._counter += 1
        return f"{domain}-{self._counter:05d}"


    def _link_peers(self, entities: List[Entity], limit: int = 3) -> None:
        """Cross-link entities that co-occur in one table (for page
        see-also mentions, which create hard retrieval distractors)."""
        names = [entity.name for entity in entities]
        for entity in entities:
            others = [n for n in names if n.lower() != entity.name.lower()]
            self._rng.shuffle(others)
            entity.add_peers(others, limit=limit)

    def _year(self) -> int:
        return self._rng.randrange(1948, 2023, 2)

    def _fresh_scope(self, kind: str, draw) -> tuple:
        """Draw a caption scope (e.g. (state, year)) not used before, so
        captions are unique lake-wide (as real table titles are)."""
        for _ in range(200):
            scope = draw()
            key = (kind,) + tuple(scope)
            if key not in self._used_scopes:
                self._used_scopes.add(key)
                return scope
        raise RuntimeError(
            f"could not find a fresh {kind} scope; increase the vocabulary"
        )

    @property
    def entities(self) -> Dict[str, Entity]:
        """All entities recorded so far (lowercased name -> Entity)."""
        return self._registry.entities

    # ------------------------------------------------------------------
    # domains
    # ------------------------------------------------------------------
    def elections_table(self) -> Table:
        """US-house-style election results for one state and year."""
        state, year = self._fresh_scope(
            "elections", lambda: (self._vocab.choice(US_STATES), self._year())
        )
        num_rows = self._rng.randint(4, 9)
        rows: List[Tuple[str, ...]] = []
        page_entities: List[Entity] = []
        for district_number in range(1, num_rows + 1):
            district = f"{state} {district_number}"
            incumbent = self._namer.next_name()
            party = self._vocab.choice(PARTIES)
            first_elected = year - self._rng.randint(2, 20)
            result = self._vocab.choice(ELECTION_RESULTS)
            votes = self._rng.randint(40, 290) * 1000 + self._rng.randint(0, 999)
            rows.append(
                (
                    district,
                    incumbent,
                    party,
                    str(first_elected),
                    result,
                    f"{votes:,}",
                )
            )
            page_entities.append(self._registry.record(
                incumbent,
                kind="politician",
                distinctive=True,
                district=district,
                party=party,
                first_elected=str(first_elected),
                result=result,
                votes=f"{votes:,}",
                year=str(year),
                state=state,
            ))
            self._registry.record(
                district,
                kind="district",
                distinctive=False,
                incumbent=incumbent,
                party=party,
                year=str(year),
                state=state,
            )
            self._registry.record(
                party,
                kind="party",
                distinctive=False,
                incumbent=incumbent,
                state=state,
                year=str(year),
            )
        self._link_peers(page_entities)
        table = Table(
            table_id=self._next_id("elections"),
            caption=(
                f"united states house of representatives elections in "
                f"{state} {year}"
            ),
            columns=("district", "incumbent", "party", "first elected",
                     "result", "votes"),
            rows=rows,
            source=self._source,
            entity_columns=("incumbent", "district", "party"),
            key_column="district",
            metadata={"domain": "elections", "state": state, "year": year},
        )
        return table

    def films_table(self) -> Table:
        """Main-cast table of one film."""
        film = self._vocab.film_title()
        year = self._year()
        genre = self._vocab.choice(FILM_GENRES)
        num_rows = self._rng.randint(4, 8)
        roles = self._vocab.sample(CHARACTER_ROLES, num_rows)
        rows: List[Tuple[str, ...]] = []
        page_entities: List[Entity] = []
        for billing, role in enumerate(roles, start=1):
            actor = self._namer.next_name()
            scenes = self._rng.randint(5, 60)
            rows.append((actor, role, str(billing), str(scenes)))
            page_entities.append(self._registry.record(
                actor,
                kind="actor",
                distinctive=True,
                film=film,
                role=role,
                year=str(year),
                genre=genre,
                billing=str(billing),
            ))
            self._registry.record(
                role,
                kind="role",
                distinctive=False,
                actor=actor,
                film=film,
                genre=genre,
            )
        self._link_peers(page_entities)
        self._registry.record(
            film,
            kind="film",
            distinctive=False,
            year=str(year),
            genre=genre,
            lead=rows[0][0],
        )
        table = Table(
            table_id=self._next_id("films"),
            caption=f"main cast of {film} ({year} {genre} film)",
            columns=("actor", "role", "billing", "scenes"),
            rows=rows,
            source=self._source,
            entity_columns=("actor", "role"),
            key_column="actor",
            metadata={"domain": "films", "film": film, "year": year},
        )
        return table

    def sports_table(self) -> Table:
        """Season player statistics of one team."""
        team = self._vocab.team_name()
        year = self._year()
        num_rows = self._rng.randint(5, 10)
        rows: List[Tuple[str, ...]] = []
        page_entities: List[Entity] = []
        for _ in range(num_rows):
            player = self._namer.next_name()
            position = self._vocab.choice(POSITIONS)
            games = self._rng.randint(35, 82)
            points = round(self._rng.uniform(2.0, 31.0), 1)
            rebounds = round(self._rng.uniform(1.0, 13.0), 1)
            rows.append((player, position, str(games), str(points), str(rebounds)))
            page_entities.append(self._registry.record(
                player,
                kind="player",
                distinctive=True,
                team=team,
                position=position,
                games=str(games),
                points=str(points),
                rebounds=str(rebounds),
                year=str(year),
            ))
            self._registry.record(
                position,
                kind="position",
                distinctive=False,
                player=player,
                team=team,
            )
        self._link_peers(page_entities)
        table = Table(
            table_id=self._next_id("sports"),
            caption=f"{team} {year} season player statistics",
            columns=("player", "position", "games", "points per game",
                     "rebounds per game"),
            rows=rows,
            source=self._source,
            entity_columns=("player", "position"),
            key_column="player",
            metadata={"domain": "sports", "team": team, "year": year},
        )
        return table

    def music_table(self) -> Table:
        """Studio-album discography of one artist."""
        artist = self._namer.next_name()
        start_year = self._year()
        num_rows = self._rng.randint(4, 8)
        rows: List[Tuple[str, ...]] = []
        page_entities: List[Entity] = []
        year = start_year
        for _ in range(num_rows):
            album = self._vocab.album_title()
            label = self._vocab.choice(RECORD_LABELS)
            weeks = self._rng.randint(1, 52)
            peak = self._rng.randint(1, 100)
            rows.append((album, str(year), label, str(weeks), str(peak)))
            page_entities.append(self._registry.record(
                album,
                kind="album",
                distinctive=False,
                artist=artist,
                year=str(year),
                label=label,
                weeks=str(weeks),
                peak=str(peak),
            ))
            self._registry.record(
                label,
                kind="label",
                distinctive=False,
                album=album,
                artist=artist,
                year=str(year),
            )
            year += self._rng.randint(1, 3)
        self._link_peers(page_entities)
        table = Table(
            table_id=self._next_id("music"),
            caption=f"{artist} studio album discography",
            columns=("album", "year", "label", "weeks on chart",
                     "peak position"),
            rows=rows,
            source=self._source,
            entity_columns=("album", "label"),
            key_column="album",
            metadata={"domain": "music", "artist": artist},
        )
        return table

    def geography_table(self) -> Table:
        """Largest-cities table of one country and census year."""
        country, year = self._fresh_scope(
            "geography", lambda: (self._vocab.choice(COUNTRIES), self._year())
        )
        num_rows = self._rng.randint(5, 10)
        rows: List[Tuple[str, ...]] = []
        page_entities: List[Entity] = []
        for _ in range(num_rows):
            city = self._vocab.city_name()
            region = self._vocab.choice(REGIONS)
            population = self._rng.randint(50, 900) * 1000 + self._rng.randint(0, 999)
            area = self._rng.randint(40, 800)
            rows.append((city, region, f"{population:,}", str(area)))
            page_entities.append(self._registry.record(
                city,
                kind="city",
                distinctive=True,
                country=country,
                region=region,
                population=f"{population:,}",
                area=str(area),
                year=str(year),
            ))
            self._registry.record(
                region,
                kind="region",
                distinctive=False,
                city=city,
                country=country,
                year=str(year),
            )
        self._link_peers(page_entities)
        table = Table(
            table_id=self._next_id("geography"),
            caption=f"largest cities of {country} by population ({year} census)",
            columns=("city", "region", "population", "area km2"),
            rows=rows,
            source=self._source,
            entity_columns=("city", "region"),
            key_column="city",
            metadata={"domain": "geography", "country": country, "year": year},
        )
        return table

    def olympics_table(self) -> Table:
        """Medal table of one games edition (host city disambiguates)."""
        year = self._year()
        host = self._vocab.city_name()
        num_rows = self._rng.randint(6, 12)
        nations = self._vocab.sample(NATIONS, min(num_rows, len(NATIONS)))
        rows: List[Tuple[str, ...]] = []
        for nation in nations:
            gold = self._rng.randint(0, 30)
            silver = self._rng.randint(0, 30)
            bronze = self._rng.randint(0, 30)
            total = gold + silver + bronze
            rows.append((nation, str(gold), str(silver), str(bronze), str(total)))
            self._registry.record(
                nation,
                kind="nation",
                distinctive=False,
                year=str(year),
                gold=str(gold),
                silver=str(silver),
                bronze=str(bronze),
                total=str(total),
            )
        table = Table(
            table_id=self._next_id("olympics"),
            caption=f"{year} summer games in {host} medal table",
            columns=("nation", "gold", "silver", "bronze", "total"),
            rows=rows,
            source=self._source,
            entity_columns=("nation",),
            key_column="nation",
            metadata={"domain": "olympics", "year": year, "host": host},
        )
        return table

    def aviation_table(self) -> Table:
        """Busiest-airports table of one country and year (extended domain)."""
        country, year = self._fresh_scope(
            "aviation", lambda: (self._vocab.choice(COUNTRIES), self._year())
        )
        num_rows = self._rng.randint(4, 8)
        rows: List[Tuple[str, ...]] = []
        page_entities: List[Entity] = []
        for _ in range(num_rows):
            city = self._vocab.city_name()
            airport = f"{city} international airport"
            passengers = self._rng.randint(500, 45000) * 1000
            runways = self._rng.randint(1, 6)
            rows.append((airport, city, f"{passengers:,}", str(runways)))
            page_entities.append(self._registry.record(
                airport,
                kind="airport",
                distinctive=True,
                city=city,
                country=country,
                passengers=f"{passengers:,}",
                runways=str(runways),
                year=str(year),
            ))
        self._link_peers(page_entities)
        return Table(
            table_id=self._next_id("aviation"),
            caption=f"busiest airports of {country} ({year})",
            columns=("airport", "city", "passengers", "runways"),
            rows=rows,
            source=self._source,
            entity_columns=("airport",),
            key_column="airport",
            metadata={"domain": "aviation", "country": country, "year": year},
        )

    def books_table(self) -> Table:
        """Bibliography of one author (extended domain)."""
        author = self._namer.next_name()
        start_year = self._year()
        num_rows = self._rng.randint(4, 7)
        rows: List[Tuple[str, ...]] = []
        page_entities: List[Entity] = []
        year = start_year
        for _ in range(num_rows):
            title = self._vocab.album_title()
            publisher = self._vocab.choice(RECORD_LABELS).replace(
                "records", "press"
            ).replace("music", "books").replace("sound", "house")
            pages = self._rng.randint(120, 900)
            copies = self._rng.randint(5, 900) * 1000
            rows.append((title, str(year), publisher, str(pages),
                         f"{copies:,}"))
            page_entities.append(self._registry.record(
                title,
                kind="book",
                distinctive=False,
                author=author,
                year=str(year),
                publisher=publisher,
                pages=str(pages),
                copies=f"{copies:,}",
            ))
            self._registry.record(
                publisher,
                kind="publisher",
                distinctive=False,
                title=title,
                author=author,
                year=str(year),
            )
            year += self._rng.randint(1, 4)
        self._link_peers(page_entities)
        return Table(
            table_id=self._next_id("books"),
            caption=f"{author} bibliography",
            columns=("title", "year published", "publisher", "pages",
                     "copies sold"),
            rows=rows,
            source=self._source,
            entity_columns=("title", "publisher"),
            key_column="title",
            metadata={"domain": "books", "author": author},
        )

    # ------------------------------------------------------------------
    # driver
    # ------------------------------------------------------------------
    def generate(
        self,
        num_tables: int,
        domain_mix: Optional[Dict[str, float]] = None,
    ) -> List[Table]:
        """Generate ``num_tables`` tables with the given domain proportions.

        The default mix weights all six domains equally.
        """
        if num_tables < 0:
            raise ValueError(f"num_tables must be >= 0, got {num_tables}")
        builders: Dict[str, Callable[[], Table]] = {
            "elections": self.elections_table,
            "films": self.films_table,
            "sports": self.sports_table,
            "music": self.music_table,
            "geography": self.geography_table,
            "olympics": self.olympics_table,
            "aviation": self.aviation_table,
            "books": self.books_table,
        }
        mix = domain_mix or {domain: 1.0 for domain in DOMAINS}
        unknown = set(mix) - set(builders)
        if unknown:
            raise ValueError(f"unknown domains in mix: {sorted(unknown)}")
        domains = sorted(mix)
        weights = [mix[d] for d in domains]
        tables: List[Table] = []
        for _ in range(num_tables):
            domain = self._rng.choices(domains, weights=weights)[0]
            tables.append(builders[domain]())
        return tables
