"""Lake assembly: tables + entity pages + knowledge graph in one bundle.

:func:`build_lake` is the single entry point benchmarks and examples use
to obtain a corpus with ground-truth relevance structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.datalake.lake import DataLake
from repro.datalake.types import Row, Table
from repro.workloads.tables import Entity, WebTableGenerator
from repro.workloads.textgen import EntityPageGenerator


@dataclass(frozen=True)
class LakeConfig:
    """Knobs of the synthetic corpus.

    ``num_tables=300`` yields roughly 2,000 tuples and 1,500 entity pages
    — a scaled-down version of the paper's 19,498-table lake with the
    same relevance structure.  Increase for paper-scale runs.
    """

    seed: int = 0
    num_tables: int = 300
    domain_mix: Optional[Dict[str, float]] = None
    boilerplate_level: int = 3
    cross_mention_rate: float = 0.3
    build_kg: bool = True
    name: str = "synthetic-lake"


@dataclass
class LakeBundle:
    """A built lake plus the ground-truth maps the evaluation needs."""

    lake: DataLake
    tables: List[Table]
    entities: Dict[str, Entity]
    entity_page: Dict[str, str]  # entity name (lower) -> doc_id
    config: LakeConfig

    def pages_of(self, entity_name: str) -> Optional[str]:
        """doc_id of the page about ``entity_name``, if any."""
        return self.entity_page.get(entity_name.lower())

    def relevant_pages_for_row(self, row: Row) -> List[str]:
        """Ground-truth relevant text files for a tuple.

        Per Section 4: "we consider the textual files about entities
        present in a tuple to be relevant evidence".
        """
        table = self.lake.table(row.table_id)
        doc_ids: List[str] = []
        for column in table.entity_columns:
            cell = row.get(column)
            if cell is None:
                continue
            doc_id = self.entity_page.get(cell.lower())
            if doc_id is not None and doc_id not in doc_ids:
                doc_ids.append(doc_id)
        return doc_ids


def _populate_kg(lake: DataLake, entities: Dict[str, Entity]) -> None:
    """Derive triples from entity appearances (Section 5 KG prototype)."""
    for entity in entities.values():
        lake.kg.add(entity.name, "instance of", entity.kind)
        facts = entity.appearances[0] if entity.appearances else {}
        for predicate, obj in facts.items():
            lake.kg.add(entity.name, predicate.replace("_", " "), obj)


def build_lake(config: LakeConfig = LakeConfig()) -> LakeBundle:
    """Build a complete multi-modal lake from a config."""
    table_gen = WebTableGenerator(seed=config.seed)
    tables = table_gen.generate(config.num_tables, domain_mix=config.domain_mix)
    page_gen = EntityPageGenerator(
        seed=config.seed + 1,
        boilerplate_level=config.boilerplate_level,
        cross_mention_rate=config.cross_mention_rate,
    )
    documents = page_gen.generate(table_gen.entities)

    lake = DataLake(name=config.name)
    for table in tables:
        lake.add_table(table)
    entity_page: Dict[str, str] = {}
    for doc in documents:
        lake.add_document(doc)
        assert doc.entity is not None
        entity_page[doc.entity.lower()] = doc.doc_id
    if config.build_kg:
        _populate_kg(lake, table_gen.entities)
    return LakeBundle(
        lake=lake,
        tables=tables,
        entities=dict(table_gen.entities),
        entity_page=entity_page,
        config=config,
    )
