"""Vocabulary pools for the synthetic corpus.

All pools are static lists; randomness enters only through the seeded
generators that draw from them.  Person, film, album, and city names are
synthesized combinatorially so the corpus scales to tens of thousands of
distinct entities without repetition.
"""

from __future__ import annotations

import itertools
import random
from typing import Dict, Iterator, List, Optional

FIRST_NAMES = [
    "james", "mary", "robert", "patricia", "john", "jennifer", "michael",
    "linda", "david", "elizabeth", "william", "barbara", "richard", "susan",
    "joseph", "jessica", "thomas", "sarah", "charles", "karen", "christopher",
    "lisa", "daniel", "nancy", "matthew", "betty", "anthony", "margaret",
    "mark", "sandra", "donald", "ashley", "steven", "kimberly", "paul",
    "emily", "andrew", "donna", "joshua", "michelle", "kenneth", "carol",
    "kevin", "amanda", "brian", "dorothy", "george", "melissa", "timothy",
    "deborah", "ronald", "stephanie", "edward", "rebecca", "jason", "sharon",
    "jeffrey", "laura", "ryan", "cynthia", "jacob", "kathleen", "gary",
    "amy", "nicholas", "angela", "eric", "shirley", "jonathan", "anna",
    "stephen", "brenda", "larry", "pamela", "justin", "emma", "scott",
    "nicole", "brandon", "helen",
]

LAST_NAMES = [
    "smith", "johnson", "williams", "brown", "jones", "garcia", "miller",
    "davis", "rodriguez", "martinez", "hernandez", "lopez", "gonzalez",
    "wilson", "anderson", "thomas", "taylor", "moore", "jackson", "martin",
    "lee", "perez", "thompson", "white", "harris", "sanchez", "clark",
    "ramirez", "lewis", "robinson", "walker", "young", "allen", "king",
    "wright", "scott", "torres", "nguyen", "hill", "flores", "green",
    "adams", "nelson", "baker", "hall", "rivera", "campbell", "mitchell",
    "carter", "roberts", "gomez", "phillips", "evans", "turner", "diaz",
    "parker", "cruz", "edwards", "collins", "reyes", "stewart", "morris",
    "morales", "murphy", "cook", "rogers", "gutierrez", "ortiz", "morgan",
    "cooper", "peterson", "bailey", "reed", "kelly", "howard", "ramos",
    "kim", "cox", "ward", "richardson",
]

US_STATES = [
    "alabama", "alaska", "arizona", "arkansas", "california", "colorado",
    "connecticut", "delaware", "florida", "georgia", "hawaii", "idaho",
    "illinois", "indiana", "iowa", "kansas", "kentucky", "louisiana",
    "maine", "maryland", "massachusetts", "michigan", "minnesota",
    "mississippi", "missouri", "montana", "nebraska", "nevada",
    "new hampshire", "new jersey", "new mexico", "new york",
    "north carolina", "north dakota", "ohio", "oklahoma", "oregon",
    "pennsylvania", "rhode island", "south carolina", "south dakota",
    "tennessee", "texas", "utah", "vermont", "virginia", "washington",
    "west virginia", "wisconsin", "wyoming",
]

PARTIES = ["democratic", "republican"]

ELECTION_RESULTS = [
    "re-elected", "retired", "lost re-election", "defeated challenger",
]

POSITIONS = ["guard", "forward", "center", "point guard", "shooting guard"]

TEAM_CITIES = [
    "springfield", "riverton", "lakewood", "fairview", "georgetown",
    "salem", "madison", "clinton", "ashland", "burlington", "dover",
    "hudson", "kingston", "newport", "oxford", "bristol", "camden",
    "dayton", "franklin", "greenville",
]

TEAM_MASCOTS = [
    "hawks", "wolves", "tigers", "bears", "eagles", "lions", "panthers",
    "falcons", "bulls", "rams", "comets", "rockets", "pioneers",
    "mariners", "raiders", "chargers", "knights", "titans", "storm",
    "thunder",
]

ADJECTIVES = [
    "silent", "golden", "broken", "crimson", "hidden", "electric",
    "midnight", "burning", "frozen", "savage", "gentle", "restless",
    "hollow", "distant", "velvet", "shattered", "wandering", "eternal",
    "fading", "rising", "lonely", "brave", "bitter", "radiant", "stolen",
    "forgotten", "wild", "quiet", "scarlet", "endless",
]

NOUNS = [
    "river", "empire", "horizon", "shadow", "garden", "anthem", "mirror",
    "harbor", "voyage", "summer", "winter", "kingdom", "lantern", "echo",
    "canyon", "meadow", "signal", "compass", "ember", "avalanche",
    "monsoon", "orchard", "satellite", "labyrinth", "cascade", "prairie",
    "beacon", "tempest", "mosaic", "aurora",
]

FILM_GENRES = ["drama", "comedy", "thriller", "romance", "action", "mystery"]

CHARACTER_ROLES = [
    "the detective", "the mayor", "the journalist", "the stranger",
    "the teacher", "the pilot", "the doctor", "the musician",
    "the gambler", "the captain", "the artist", "the lawyer",
    "the rival", "the mentor", "the neighbor", "the scientist",
]

RECORD_LABELS = [
    "northside records", "bluebird music", "harbor lane records",
    "monument sound", "red brick records", "silver arch music",
    "old mill records", "paper crane records",
]

COUNTRIES = [
    "atlantia", "borania", "cordovia", "drevland", "estaria", "fenwick",
    "galdora", "hestia", "ivoria", "jorvland", "kestania", "lumeria",
]

REGIONS = [
    "northern province", "southern province", "eastern province",
    "western province", "central district", "coastal region",
    "highland region", "lake district",
]

NATIONS = [
    "valoria", "crestfall", "norwind", "suthmark", "eastmere", "westhold",
    "ironvale", "stormcrest", "brightland", "ashenford", "goldport",
    "silverpine", "redmoor", "greenhollow", "bluewater", "highcliff",
    "lowfield", "oakenshire", "pinemere", "willowbrook", "frosthaven",
    "sunmere", "rainholm", "windermoor",
]

DIRECTOR_STYLES = ["acclaimed", "veteran", "independent", "award-winning"]


class EntityNamer:
    """Yields globally unique person-like names, deterministically.

    Base pool is first x last; once exhausted, a middle initial is added.
    """

    def __init__(self, seed: int = 0) -> None:
        rng = random.Random(seed)
        base = [
            f"{first} {last}"
            for first in FIRST_NAMES
            for last in LAST_NAMES
        ]
        rng.shuffle(base)
        self._base = base
        self._cursor = 0
        self._suffix_cycle = 0

    def next_name(self) -> str:
        """The next unique name."""
        if self._cursor < len(self._base):
            name = self._base[self._cursor]
            self._cursor += 1
            return name
        # exhausted: recycle with middle initials a., b., ...
        index = self._cursor - len(self._base)
        initial = chr(ord("a") + (index // len(self._base)) % 26)
        name = self._base[index % len(self._base)]
        first, _, last = name.partition(" ")
        self._cursor += 1
        return f"{first} {initial}. {last}"

    def take(self, count: int) -> List[str]:
        """The next ``count`` unique names."""
        return [self.next_name() for _ in range(count)]


class Vocabulary:
    """Seeded access to compound name pools (titles, teams, cities...)."""

    def __init__(self, seed: int = 0) -> None:
        self._rng = random.Random(seed)
        self._used: Dict[str, set] = {}

    def _unique(self, kind: str, candidates_factory) -> str:
        used = self._used.setdefault(kind, set())
        for _ in range(1000):
            candidate = candidates_factory()
            if candidate not in used:
                used.add(candidate)
                return candidate
        # fall back to a numbered variant (pool exhausted)
        candidate = f"{candidates_factory()} {len(used)}"
        used.add(candidate)
        return candidate

    def film_title(self) -> str:
        """A unique film title like 'the crimson harbor'."""
        return self._unique(
            "film",
            lambda: f"the {self._rng.choice(ADJECTIVES)} {self._rng.choice(NOUNS)}",
        )

    def album_title(self) -> str:
        """A unique album title like 'velvet echo'."""
        return self._unique(
            "album",
            lambda: f"{self._rng.choice(ADJECTIVES)} {self._rng.choice(NOUNS)}",
        )

    def team_name(self) -> str:
        """A unique team name like 'springfield hawks'."""
        return self._unique(
            "team",
            lambda: f"{self._rng.choice(TEAM_CITIES)} {self._rng.choice(TEAM_MASCOTS)}",
        )

    def city_name(self) -> str:
        """A unique synthetic city name like 'east dover heights'."""
        prefixes = ["north", "south", "east", "west", "new", "old", "upper", "lower"]
        suffixes = ["heights", "falls", "grove", "junction", "park", "valley",
                    "ridge", "springs"]
        return self._unique(
            "city",
            lambda: (
                f"{self._rng.choice(prefixes)} {self._rng.choice(TEAM_CITIES)} "
                f"{self._rng.choice(suffixes)}"
            ),
        )

    def choice(self, pool: List[str]) -> str:
        """Seeded draw from a static pool (with replacement)."""
        return self._rng.choice(pool)

    def randint(self, lo: int, hi: int) -> int:
        """Seeded integer in [lo, hi]."""
        return self._rng.randint(lo, hi)

    def sample(self, pool: List[str], count: int) -> List[str]:
        """Seeded sample without replacement."""
        return self._rng.sample(pool, count)
