"""Synthetic multi-modal corpus and evaluation workloads.

The paper's lake (19,498 tables / 269,622 tuples / 13,796 wiki text
files from TabFact and WikiTable-TURL) is not redistributable offline, so
this package generates an equivalent corpus with the three properties the
evaluation relies on:

1. every tuple needing verification has exactly one complete counterpart
   in the lake (relevance ground truth for tuple→tuple retrieval);
2. entity-valued cells link to wiki-style text pages (ground truth for
   tuple→text retrieval);
3. every textual claim is grounded in exactly one table (ground truth
   for claim→table retrieval).

Everything is seeded and deterministic.
"""

from repro.workloads.builder import LakeBundle, LakeConfig, build_lake
from repro.workloads.claimwl import ClaimTask, ClaimWorkload, build_claim_workload
from repro.workloads.tables import DOMAINS, WebTableGenerator
from repro.workloads.textgen import EntityPageGenerator
from repro.workloads.tuplecomp import (
    TupleCompletionTask,
    TupleCompletionWorkload,
    build_tuple_workload,
)
from repro.workloads.vocab import EntityNamer, Vocabulary

__all__ = [
    "DOMAINS",
    "ClaimTask",
    "ClaimWorkload",
    "EntityNamer",
    "EntityPageGenerator",
    "LakeBundle",
    "LakeConfig",
    "TupleCompletionTask",
    "TupleCompletionWorkload",
    "Vocabulary",
    "WebTableGenerator",
    "build_claim_workload",
    "build_lake",
    "build_tuple_workload",
]
