"""Wiki-style entity page generation.

The paper harvests Wikipedia text for entities linked from table cells;
this generator renders an equivalent page per entity from its recorded
table appearances.  Two knobs shape retrieval difficulty the way real
wiki text does:

* ``boilerplate_level`` — generic sentences shared by every page of a
  kind (real pages share large amounts of template prose), which dilutes
  BM25 scores;
* ``cross_mention_rate`` — "see also" mentions of other entities, which
  put a given entity's name on pages that are *not* its own.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.datalake.types import Source, TextDocument
from repro.workloads.tables import Entity

_BOILERPLATE = {
    "politician": [
        "The united states house of representatives is the lower chamber of "
        "the united states congress.",
        "Election results list the incumbent, party, first elected year, "
        "result, and votes for each district.",
        "Members of the house are elected to two year terms from "
        "congressional districts.",
        "An incumbent seeking another term may keep or lose the seat.",
    ],
    "district": [
        "A congressional district elects a single member to the house of "
        "representatives.",
        "District boundaries are redrawn after each decennial census.",
        "Each district is identified by its state and a district number.",
    ],
    "actor": [
        "Billing order in a film's credits reflects the prominence of a role.",
        "Casting for studio films is announced in the trade press before "
        "principal photography.",
        "A main cast table lists each actor, their role, billing, and scenes.",
    ],
    "film": [
        "A feature film is produced in a genre such as drama, comedy, or "
        "thriller.",
        "The main cast of a film is listed in billing order.",
    ],
    "player": [
        "Season statistics are recorded per player and include games played, "
        "points per game, and rebounds per game.",
        "A roster lists each player with their position and averages.",
    ],
    "album": [
        "A studio album is released under a record label and may chart for "
        "several weeks.",
        "Peak position is the best weekly chart rank an album attains.",
    ],
    "label": [
        "A record label signs artists and releases their studio albums.",
        "Discography tables list each album with its year, label, weeks on "
        "chart, and peak position.",
    ],
    "city": [
        "Census population figures are published for cities and "
        "administrative regions.",
        "City area is measured in square kilometres.",
    ],
    "region": [
        "An administrative region groups several cities of a country.",
        "Regional statistics are collected at each census.",
    ],
    "nation": [
        "The medal table ranks delegations by gold medals won.",
        "The total column counts gold, silver, and bronze medals together.",
    ],
    "party": [
        "A political party nominates candidates for elected office.",
        "The two major parties contest most congressional districts.",
    ],
    "role": [
        "A stock character is a recognizable archetype that recurs across "
        "films and genres.",
        "Casting announcements name the actor chosen for each role.",
    ],
    "position": [
        "Basketball positions describe a player's usual duties on the "
        "court.",
        "A team's roster lists each player with their position.",
    ],
    "airport": [
        "Airport traffic is measured in annual passengers.",
        "An international airport serves its city and surrounding region.",
    ],
    "book": [
        "A bibliography lists an author's books with year, publisher, and "
        "copies sold.",
        "Page counts and sales figures are reported by the publisher.",
    ],
    "publisher": [
        "A publishing house releases books by many authors.",
        "Catalogue entries record each title with its publication year.",
    ],
}


def _fact_sentences(entity: Entity, facts: Dict[str, str]) -> List[str]:
    """Kind-specific sentences rendering one appearance of an entity."""
    name = entity.name.title()
    kind = entity.kind
    if kind == "politician":
        return [
            f"{name} is an american politician of the {facts['party']} party.",
            f"{name} represented the {facts['district']} district and was "
            f"first elected in {facts['first_elected']}.",
            f"In the {facts['year']} election in {facts['state']}, {name} "
            f"was {facts['result']} with {facts['votes']} votes.",
        ]
    if kind == "district":
        return [
            f"The {entity.name} district of {facts['state']} was represented "
            f"by {facts['incumbent'].title()} of the {facts['party']} party "
            f"in {facts['year']}.",
        ]
    if kind == "actor":
        return [
            f"{name} is an actor known for playing {facts['role']} in "
            f"{facts['film']} ({facts['year']}).",
            f"{name} received billing position {facts['billing']} in the "
            f"{facts['genre']} film {facts['film']}.",
        ]
    if kind == "film":
        return [
            f"{name} is a {facts['year']} {facts['genre']} film.",
            f"The lead role in {entity.name} was played by "
            f"{facts['lead'].title()}.",
        ]
    if kind == "player":
        return [
            f"{name} is a basketball {facts['position']} who played for the "
            f"{facts['team']} in {facts['year']}.",
            f"{name} appeared in {facts['games']} games averaging "
            f"{facts['points']} points per game and {facts['rebounds']} "
            f"rebounds per game.",
        ]
    if kind == "album":
        return [
            f"{name} is a studio album by {facts['artist'].title()} released "
            f"in {facts['year']} on {facts['label']}.",
            f"It spent {facts['weeks']} weeks on the chart peaking at "
            f"position {facts['peak']}.",
        ]
    if kind == "label":
        return [
            f"{name} is a record label whose releases include "
            f"{facts['album']} by {facts['artist'].title()} ({facts['year']}).",
        ]
    if kind == "city":
        return [
            f"{name} is a city in the {facts['region']} of "
            f"{facts['country']}.",
            f"At the {facts['year']} census it had a population of "
            f"{facts['population']} and an area of {facts['area']} square "
            f"kilometres.",
        ]
    if kind == "region":
        return [
            f"The {entity.name} includes the city of {facts['city'].title()}.",
        ]
    if kind == "nation":
        return [
            f"At the {facts['year']} summer games, {name} won "
            f"{facts['gold']} gold, {facts['silver']} silver, and "
            f"{facts['bronze']} bronze medals for a total of "
            f"{facts['total']}.",
        ]
    if kind == "party":
        return [
            f"The {entity.name} party fields candidates nationwide; "
            f"{facts['incumbent'].title()} stood for it in {facts['state']} "
            f"in {facts['year']}.",
        ]
    if kind == "role":
        return [
            f"{name} is a stock character; {facts['actor'].title()} played "
            f"it in {facts['film']}.",
        ]
    if kind == "position":
        return [
            f"The {entity.name} position was held by "
            f"{facts['player'].title()} of the {facts['team']}.",
        ]
    if kind == "airport":
        return [
            f"{name} serves {facts['city'].title()} in {facts['country']}.",
            f"In {facts['year']} it handled {facts['passengers']} passengers "
            f"across {facts['runways']} runways.",
        ]
    if kind == "book":
        return [
            f"{name} is a book by {facts['author'].title()} published in "
            f"{facts['year']} by {facts['publisher']}.",
            f"It runs {facts['pages']} pages and sold {facts['copies']} "
            f"copies.",
        ]
    if kind == "publisher":
        return [
            f"{name} published {facts['title']} by "
            f"{facts['author'].title()} in {facts['year']}.",
        ]
    raise ValueError(f"unknown entity kind: {kind}")


class EntityPageGenerator:
    """Seeded generator of entity pages from recorded appearances."""

    def __init__(
        self,
        seed: int = 0,
        boilerplate_level: int = 3,
        cross_mention_rate: float = 0.3,
        max_appearances: int = 4,
        source_name: str = "wikipages",
    ) -> None:
        if boilerplate_level < 0:
            raise ValueError("boilerplate_level must be >= 0")
        if not 0.0 <= cross_mention_rate <= 1.0:
            raise ValueError("cross_mention_rate must be in [0, 1]")
        self._rng = random.Random(seed)
        self.boilerplate_level = boilerplate_level
        self.cross_mention_rate = cross_mention_rate
        self.max_appearances = max_appearances
        self._source = Source(source_name)

    def page_for(
        self,
        entity: Entity,
        doc_id: str,
        mention_pool: Optional[Sequence[str]] = None,
    ) -> TextDocument:
        """Render one entity's page."""
        sentences: List[str] = []
        for facts in entity.appearances[: self.max_appearances]:
            sentences.extend(_fact_sentences(entity, facts))
        boiler = _BOILERPLATE.get(entity.kind, [])
        sentences.extend(boiler[: self.boilerplate_level])
        # cross-mentions: peers from the same table are the hardest
        # distractors (their pages share context *and* gain this name)
        for peer in entity.peers:
            if self._rng.random() < self.cross_mention_rate:
                sentences.append(f"See also {peer.title()}.")
        if (
            not entity.peers
            and mention_pool
            and self._rng.random() < self.cross_mention_rate
        ):
            others = [m for m in mention_pool if m.lower() != entity.name.lower()]
            if others:
                mention = self._rng.choice(others)
                sentences.append(f"See also {mention.title()}.")
        return TextDocument(
            doc_id=doc_id,
            title=entity.name.title(),
            text=" ".join(sentences),
            source=self._source,
            entity=entity.name,
            metadata={"kind": entity.kind},
        )

    def generate(self, entities: Dict[str, Entity]) -> List[TextDocument]:
        """Pages for every entity, ids assigned in deterministic order."""
        names = [entity.name for entity in entities.values()]
        docs: List[TextDocument] = []
        for index, key in enumerate(sorted(entities)):
            entity = entities[key]
            docs.append(
                self.page_for(entity, doc_id=f"page-{index:05d}", mention_pool=names)
            )
        return docs
