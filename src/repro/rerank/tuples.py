"""(tuple, tuple) reranking — the RetClean case.

Serialized tuples ('col: v ; col: v') are compared by schema-aligned
value agreement: matching column names pair up their values, which are
compared numeric-aware; unaligned content falls back to bag-of-token
overlap.  This is the fine-grained signal a fine-tuned pair encoder
learns for retrieval-based data cleaning.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.rerank.base import Reranker
from repro.text import analyze, normalize
from repro.text.numbers import parse_number
from repro.text.similarity import jaccard, levenshtein_ratio


def parse_serialized_tuple(payload: str) -> Optional[Dict[str, str]]:
    """Parse 'col: v ; col: v' into a mapping (None if not that shape)."""
    if ": " not in payload:
        return None
    fields: Dict[str, str] = {}
    for part in payload.split(" ; "):
        column, sep, value = part.partition(": ")
        if not sep:
            return None
        fields[column.strip()] = value.strip()
    return fields or None


def _value_similarity(a: str, b: str) -> float:
    num_a, num_b = parse_number(a), parse_number(b)
    if num_a is not None and num_b is not None:
        if num_a == num_b:
            return 1.0
        denom = max(abs(num_a), abs(num_b), 1.0)
        return max(0.0, 1.0 - abs(num_a - num_b) / denom)
    return levenshtein_ratio(normalize(a), normalize(b))


class TupleReranker(Reranker):
    """Schema-aligned tuple pair scorer."""

    name = "tuple-pair"

    def __init__(self, aligned_weight: float = 0.7, bag_weight: float = 0.3) -> None:
        self.aligned_weight = aligned_weight
        self.bag_weight = bag_weight

    def score(self, query: str, payload: str) -> float:
        query_fields = parse_serialized_tuple(query)
        payload_fields = parse_serialized_tuple(payload)
        bag_score = jaccard(analyze(query), analyze(payload))
        if not query_fields or not payload_fields:
            return bag_score
        payload_by_norm = {
            normalize(column): value for column, value in payload_fields.items()
        }
        sims = []
        for column, value in query_fields.items():
            other = payload_by_norm.get(normalize(column))
            if other is None:
                continue
            sims.append(_value_similarity(value, other))
        aligned_score = sum(sims) / len(sims) if sims else 0.0
        return self.aligned_weight * aligned_score + self.bag_weight * bag_score
