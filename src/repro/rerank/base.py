"""Reranker interface.

A reranker scores (query, candidate payload) pairs; payload resolution
from instance ids happens through a caller-supplied fetch function so
rerankers stay storage-agnostic.
"""

from __future__ import annotations

import abc
from typing import Callable, List, Sequence

from repro.index.base import SearchHit


class Reranker(abc.ABC):
    """Scores a query against one candidate payload; higher is better."""

    name: str = "reranker"

    @abc.abstractmethod
    def score(self, query: str, payload: str) -> float:
        """Fine-grained relevance of ``payload`` to ``query``."""

    def rerank(
        self,
        query: str,
        candidates: Sequence[SearchHit],
        fetch: Callable[[str], str],
        k: int = 5,
    ) -> List[SearchHit]:
        """Re-score ``candidates`` and return the top ``k``.

        ``fetch`` maps an instance id to its serialized payload.
        """
        scored = [
            SearchHit(
                score=self.score(query, fetch(hit.instance_id)),
                instance_id=hit.instance_id,
                index_name=self.name,
            )
            for hit in candidates
        ]
        scored.sort(key=lambda hit: (-hit.score, hit.instance_id))
        return scored[: max(k, 0)]


def rerank_hits(
    reranker: Reranker,
    query: str,
    candidates: Sequence[SearchHit],
    fetch: Callable[[str], str],
    k: int = 5,
) -> List[SearchHit]:
    """Functional convenience wrapper around :meth:`Reranker.rerank`."""
    return reranker.rerank(query, candidates, fetch, k)
