"""Generic feature-mixture reranker.

A lightweight cross-scorer usable for any (text, anything-serialized)
pair when no task-specific reranker applies — the extensibility point
the paper's remark ("we are currently working on expanding our support
for different types of fine-grained Rerankers") calls for.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.rerank.base import Reranker
from repro.text import analyze
from repro.text.numbers import numbers_in
from repro.text.similarity import jaccard, trigram_similarity


@dataclass
class FeatureWeights:
    """Weights of the feature mixture (default roughly equal)."""

    token_jaccard: float = 0.4
    query_coverage: float = 0.4
    trigram: float = 0.1
    number_overlap: float = 0.1


class FeatureReranker(Reranker):
    """Mixture of cheap lexical features."""

    name = "features"

    def __init__(self, weights: FeatureWeights = FeatureWeights()) -> None:
        self.weights = weights

    def features(self, query: str, payload: str) -> Dict[str, float]:
        """The raw feature values for a pair (useful for inspection)."""
        query_tokens = set(analyze(query))
        payload_tokens = set(analyze(payload))
        coverage = (
            len(query_tokens & payload_tokens) / len(query_tokens)
            if query_tokens
            else 0.0
        )
        query_numbers = set(numbers_in(query))
        payload_numbers = set(numbers_in(payload))
        number_overlap = (
            len(query_numbers & payload_numbers) / len(query_numbers)
            if query_numbers
            else 0.0
        )
        return {
            "token_jaccard": jaccard(query_tokens, payload_tokens),
            "query_coverage": coverage,
            "trigram": trigram_similarity(query[:200], payload[:200]),
            "number_overlap": number_overlap,
        }

    def score(self, query: str, payload: str) -> float:
        values = self.features(query, payload)
        weights = self.weights
        return (
            weights.token_jaccard * values["token_jaccard"]
            + weights.query_coverage * values["query_coverage"]
            + weights.trigram * values["trigram"]
            + weights.number_overlap * values["number_overlap"]
        )
