"""Task-specific rerankers (the paper's Reranker module, Section 3.2).

The Indexer's coarse top-k (k = 100..1000) is reranked down to a small
k' (e.g. 5) by a task-aware scorer:

* :class:`LateInteractionReranker` — ColBERT-style (text, text) MaxSim
  over per-token embeddings;
* :class:`TableReranker` — OpenTFV-style (text, table) scoring that
  weighs caption match, schema match, and cell-grounding of the claim's
  entities and values;
* :class:`TupleReranker` — (tuple, tuple) scoring by schema-aligned
  value agreement (the RetClean case);
* :class:`FeatureReranker` — a generic feature-mixture cross-scorer.
"""

from repro.rerank.base import Reranker, rerank_hits
from repro.rerank.colbert import LateInteractionReranker
from repro.rerank.features import FeatureReranker
from repro.rerank.table import TableReranker
from repro.rerank.tuples import TupleReranker

__all__ = [
    "FeatureReranker",
    "LateInteractionReranker",
    "Reranker",
    "TableReranker",
    "TupleReranker",
    "rerank_hits",
]
