"""OpenTFV-style (text, table) reranking.

OpenTFV (Gu et al., SIGMOD 2022) retrieves and reranks tables for
open-domain table fact verification.  This reranker scores a claim
against a serialized table by mixing four signals:

1. caption match — token overlap between the claim and the caption line;
2. year agreement — a claim naming a year that the caption contradicts
   is heavily penalized (the Figure 4 "E2 is for 1959" case);
3. schema grounding — does the claim mention a column of the table;
4. cell grounding — are the claim's entities/values present in cells.
"""

from __future__ import annotations

from typing import List, Set

from repro.rerank.base import Reranker
from repro.text import analyze
from repro.text.numbers import numbers_in
from repro.text.similarity import jaccard


def _years(tokens_source: str) -> Set[int]:
    return {
        int(n)
        for n in numbers_in(tokens_source)
        if 1900 <= n <= 2100 and n == int(n)
    }


class TableReranker(Reranker):
    """Claim-vs-table mixture scorer."""

    name = "opentfv"

    def __init__(
        self,
        caption_weight: float = 0.4,
        schema_weight: float = 0.2,
        cell_weight: float = 0.4,
        year_penalty: float = 0.5,
    ) -> None:
        self.caption_weight = caption_weight
        self.schema_weight = schema_weight
        self.cell_weight = cell_weight
        self.year_penalty = year_penalty

    def score(self, query: str, payload: str) -> float:
        """Score a claim against a serialized table (caption\\nheader\\nrows)."""
        lines = payload.splitlines()
        if not lines:
            return 0.0
        caption = lines[0] if " | " not in lines[0] else ""
        header = ""
        body_lines: List[str] = []
        for line in lines[1:] if caption else lines:
            if " | " in line and not header:
                header = line
            elif " | " in line:
                body_lines.append(line)
        claim_tokens = set(analyze(query))
        if not claim_tokens:
            return 0.0

        caption_tokens = set(analyze(caption))
        # fraction of the caption covered by the claim — a claim naming the
        # table's full scope scores 1.0
        caption_score = (
            len(claim_tokens & caption_tokens) / len(caption_tokens)
            if caption_tokens
            else 0.0
        )

        header_tokens = set(analyze(header))
        schema_score = (
            len(claim_tokens & header_tokens) / len(header_tokens)
            if header_tokens
            else 0.0
        )

        cell_tokens = set(analyze(" ".join(body_lines)))
        grounding = (
            len(claim_tokens & (cell_tokens | caption_tokens | header_tokens))
            / len(claim_tokens)
        )

        score = (
            self.caption_weight * caption_score
            + self.schema_weight * schema_score
            + self.cell_weight * grounding
        )

        claim_years = _years(query)
        caption_years = _years(caption)
        if claim_years and caption_years and not claim_years & caption_years:
            score -= self.year_penalty
        return score
