"""ColBERT-style late-interaction reranking for (text, text) pairs.

Scoring is exactly ColBERT's MaxSim: embed every query token and every
document token, then sum over query tokens the maximum cosine similarity
against any document token.  Token embeddings come from the character
n-gram :class:`~repro.embed.token_embed.TokenEmbedder`, so near-identical
surface forms interact strongly while unrelated tokens stay near zero.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

import numpy as np

from repro.embed.token_embed import TokenEmbedder
from repro.rerank.base import Reranker
from repro.text import analyze


class LateInteractionReranker(Reranker):
    """Sum-of-MaxSim late interaction scorer.

    ``token_weight`` optionally weights each query token's MaxSim
    contribution (e.g. by BM25 idf, so rare entity tokens dominate) —
    the analogue of ColBERT learning to down-weight stopword-like
    tokens.
    """

    name = "colbert"

    def __init__(
        self,
        embedder: Optional[TokenEmbedder] = None,
        normalize_by_query_length: bool = True,
        cache_documents: bool = True,
        token_weight: Optional[Callable[[str], float]] = None,
    ) -> None:
        self.embedder = embedder or TokenEmbedder(dim=64)
        self.normalize_by_query_length = normalize_by_query_length
        self.token_weight = token_weight
        self._doc_cache: Optional[Dict[str, np.ndarray]] = (
            {} if cache_documents else None
        )

    def _doc_matrix(self, payload: str) -> np.ndarray:
        if self._doc_cache is not None:
            cached = self._doc_cache.get(payload)
            if cached is not None:
                return cached
        matrix = self.embedder.embed_text(payload)
        if self._doc_cache is not None:
            self._doc_cache[payload] = matrix
        return matrix

    def score(self, query: str, payload: str) -> float:
        """MaxSim score of ``payload`` for ``query``."""
        query_tokens = analyze(query)
        query_matrix = self.embedder.embed_tokens(query_tokens)
        doc_matrix = self._doc_matrix(payload)
        if query_matrix.shape[0] == 0 or doc_matrix.shape[0] == 0:
            return 0.0
        # (num_query_tokens, num_doc_tokens) cosine table; embeddings are
        # unit vectors so the inner product is the cosine
        interactions = query_matrix @ doc_matrix.T
        max_sims = interactions.max(axis=1)
        if self.token_weight is not None:
            weights = np.array(
                [self.token_weight(token) for token in query_tokens]
            )
            total = float((max_sims * weights).sum())
            denom = float(weights.sum()) or 1.0
        else:
            total = float(max_sims.sum())
            denom = float(query_matrix.shape[0])
        if self.normalize_by_query_length:
            return total / denom
        return total
